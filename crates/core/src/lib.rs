#![forbid(unsafe_code)]

//! `lego` — the sequence-oriented DBMS fuzzer of *Sequence-Oriented DBMS
//! Fuzzing* (ICDE 2023), reproduced in Rust.
//!
//! The pipeline (paper Figure 4):
//!
//! 1. **Proactive affinity analysis** — pick a seed from the pool, apply
//!    [sequence-oriented mutations](fuzzer) (Algorithm 1: substitution,
//!    insertion, deletion), and for every mutant that covers new branches,
//!    extract its [type-affinities](affinity) (Algorithm 2).
//! 2. **Progressive sequence synthesis** — for every *new* affinity,
//!    [synthesize](synthesis) all new SQL Type Sequences containing it up to
//!    length `LEN` (Algorithm 3, via the Prefix Sequence index), and
//!    [instantiate](instantiate/index.html) each sequence into executable test cases
//!    from the AST-structure library with dependency fixing and data refill.
//!
//! The [campaign] module provides the engine-agnostic harness used to
//! compare LEGO with the baseline fuzzers on identical terms.
//!
//! ```
//! use lego::prelude::*;
//!
//! let mut fuzzer = LegoFuzzer::new(Dialect::Postgres, Config::default());
//! let stats = run_campaign(&mut fuzzer, Dialect::Postgres, Budget::execs(200));
//! assert!(stats.branches > 0);
//! ```

pub mod affinity;
pub mod campaign;
pub mod checkpoint;
pub mod corpus_io;
pub mod fuzzer;
pub mod gen;
pub mod instantiate;
pub mod mutation;
pub mod ngram;
pub mod pool;
pub mod reduce;
pub mod seeds;
pub mod special;
pub mod synthesis;

pub use affinity::AffinityMap;
pub use campaign::{
    run_campaign, run_campaign_durable, run_campaign_full, run_campaign_observed,
    run_campaign_parallel, run_campaign_parallel_durable, run_campaign_parallel_full,
    run_campaign_parallel_observed, run_campaign_parallel_resilient, run_campaign_parallel_sema,
    run_campaign_parallel_with_oracles, run_campaign_resilient, run_campaign_sema,
    run_campaign_with_oracles, Budget, CampaignStats, FuzzEngine, LogicBugFinding, ParallelOpts,
    SEMA_AUDIT_EVERY,
};
pub use checkpoint::{load_campaign_checkpoint, CheckpointCfg};
pub use fuzzer::{Config, LegoFuzzer};
pub use lego_observe as observe;
pub use lego_oracle as oracle;
pub use lego_oracle::{LogicBug, OracleConfig};
pub use reduce::reduce_case;
pub use synthesis::SequenceStore;

/// Commonly used items.
pub mod prelude {
    pub use crate::affinity::AffinityMap;
    pub use crate::campaign::{run_campaign, Budget, CampaignStats, FuzzEngine};
    pub use crate::fuzzer::{Config, LegoFuzzer};
    pub use lego_sqlast::{Dialect, StmtKind, TestCase};
}
