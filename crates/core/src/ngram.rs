//! Packed n-gram memory for sequence-novelty checks.
//!
//! The fuzzer remembers every executed 2-/3-gram of statement types so
//! progressive synthesis (Algorithm 3) can steer toward unexecuted
//! sequences. Profiling showed the old `HashSet<Vec<StmtKind>>` dominating
//! the feedback stage: every window probe allocated a `Vec` and ran SipHash
//! over it, and a long case contributes hundreds of windows.
//!
//! [`StmtKind::code`] values fit in 16 bits, so a whole n-gram packs into
//! one `u64` key ([`pack2`]/[`pack3`]) and the set becomes open addressing
//! over a flat `u64` table with a SplitMix64 probe hash — no allocation, no
//! byte-wise hashing, cache-line-friendly probes.
//!
//! Packing layout (codes are biased by +1 so a key is never 0, letting 0
//! act as the empty-slot sentinel):
//!
//! ```text
//! bits 32..48 = c0+1,  bits 16..32 = c1+1,  bits 0..16 = c2+1 (0 if bigram)
//! ```
//!
//! A useful side effect: ascending key order sorts bigrams before their
//! trigram extensions and orders grams lexicographically by code, so the
//! checkpoint serialization of the set is canonical without re-deriving the
//! old `Vec<Vec<u16>>` sort.

use lego_sqlast::StmtKind;

/// Pack a bigram of type codes. Keys never collide with trigram keys
/// because the low 16 bits stay 0.
#[inline]
pub fn pack2(a: StmtKind, b: StmtKind) -> u64 {
    ((a.code() as u64 + 1) << 32) | ((b.code() as u64 + 1) << 16)
}

/// Pack a trigram of type codes.
#[inline]
pub fn pack3(a: StmtKind, b: StmtKind, c: StmtKind) -> u64 {
    pack2(a, b) | (c.code() as u64 + 1)
}

/// Pack a window of 2 or 3 kinds (panics on other lengths — the fuzzer only
/// tracks those orders, mirroring the paper's n ∈ {2, 3}).
#[inline]
pub fn pack_window(w: &[StmtKind]) -> u64 {
    match *w {
        [a, b] => pack2(a, b),
        [a, b, c] => pack3(a, b, c),
        _ => panic!("n-gram windows are 2 or 3 statements, got {}", w.len()),
    }
}

/// Unpack a key back into type codes (checkpoint serialization sanity and
/// v1-migration tests).
pub fn unpack(key: u64) -> Vec<u16> {
    let mut codes = Vec::with_capacity(3);
    for shift in [32u32, 16, 0] {
        let c = (key >> shift) & 0xffff;
        if c != 0 {
            codes.push((c - 1) as u16);
        }
    }
    codes
}

/// SplitMix64 finalizer — bijective, so distinct keys never alias before
/// the table mask is applied.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Open-addressing set of packed n-gram keys. Linear probing, power-of-two
/// capacity, grown at 7/8 load; slot value 0 means empty (valid keys are
/// never 0 thanks to the +1 bias in [`pack2`]).
#[derive(Clone, Debug)]
pub struct NgramSet {
    slots: Box<[u64]>,
    mask: usize,
    len: usize,
}

impl Default for NgramSet {
    fn default() -> Self {
        Self::new()
    }
}

impl NgramSet {
    pub fn new() -> Self {
        // 1024 slots covers the first few thousand executions without a
        // rehash; the set typically plateaus in the low tens of thousands.
        Self::with_capacity_pow2(1024)
    }

    fn with_capacity_pow2(cap: usize) -> Self {
        debug_assert!(cap.is_power_of_two());
        Self { slots: vec![0u64; cap].into_boxed_slice(), mask: cap - 1, len: 0 }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a packed key; returns `true` if it was new.
    pub fn insert(&mut self, key: u64) -> bool {
        debug_assert_ne!(key, 0, "packed n-gram keys are never 0");
        if (self.len + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mut i = mix(key) as usize & self.mask;
        loop {
            let slot = self.slots[i];
            if slot == key {
                return false;
            }
            if slot == 0 {
                self.slots[i] = key;
                self.len += 1;
                return true;
            }
            i = (i + 1) & self.mask;
        }
    }

    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        let mut i = mix(key) as usize & self.mask;
        loop {
            let slot = self.slots[i];
            if slot == key {
                return true;
            }
            if slot == 0 {
                return false;
            }
            i = (i + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let mut bigger = Self::with_capacity_pow2(self.slots.len() * 2);
        for &k in self.slots.iter().filter(|&&k| k != 0) {
            bigger.insert(k);
        }
        *self = bigger;
    }

    /// Keys in ascending order — the canonical checkpoint form.
    pub fn sorted_keys(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.slots.iter().copied().filter(|&k| k != 0).collect();
        v.sort_unstable();
        v
    }
}

/// Longest sequence a [`pack_seq`] key can hold: eight 16-bit lanes.
pub const MAX_PACKED_SEQ: usize = 8;

/// Pack a whole statement-type sequence (length 1..=[`MAX_PACKED_SEQ`]) into
/// a `u128`, lane `i` holding `code+1` of statement `i`. The +1 bias keeps
/// every key nonzero and distinguishes `[A]` from `[A, pad]`, so packing is
/// injective over all lengths. [`crate::synthesis::SequenceStore`] uses these
/// keys for duplicate suppression — Algorithm 3 probes its `seen` set once
/// per explored node, and hashing a `u128` beats SipHash over a `Vec`.
#[inline]
pub fn pack_seq(seq: &[StmtKind]) -> u128 {
    debug_assert!(!seq.is_empty() && seq.len() <= MAX_PACKED_SEQ);
    let mut key = 0u128;
    for (i, s) in seq.iter().enumerate() {
        key |= (s.code() as u128 + 1) << (i * 16);
    }
    key
}

/// Number of statements in a [`pack_seq`] key (count of nonzero lanes).
#[inline]
pub fn seq_len(key: u128) -> usize {
    (128 - key.leading_zeros() as usize).div_ceil(16)
}

/// Decode a [`pack_seq`] key back into kinds (checkpoint serialization and
/// deferred-job materialization; the hot paths stay packed).
pub fn unpack_seq(mut key: u128) -> Vec<StmtKind> {
    let mut v = Vec::with_capacity(seq_len(key));
    while key != 0 {
        let lane = (key & 0xffff) as u16;
        v.push(StmtKind::from_code(lane - 1).expect("packed lane within alphabet"));
        key >>= 16;
    }
    v
}

/// The [`pack2`] key of the bigram starting at statement `i` of a packed
/// sequence, read straight from the lanes (they already store `code+1`).
#[inline]
pub fn gram2_at(seq: u128, i: usize) -> u64 {
    ((((seq >> (i * 16)) & 0xffff) as u64) << 32)
        | ((((seq >> ((i + 1) * 16)) & 0xffff) as u64) << 16)
}

/// The [`pack3`] key of the trigram starting at statement `i`.
#[inline]
pub fn gram3_at(seq: u128, i: usize) -> u64 {
    gram2_at(seq, i) | (((seq >> ((i + 2) * 16)) & 0xffff) as u64)
}

/// Open-addressing set of [`pack_seq`] keys — the `u128` twin of
/// [`NgramSet`], same probing scheme, the two 64-bit halves folded through
/// SplitMix64.
#[derive(Clone, Debug, Default)]
pub struct SeqKeySet {
    slots: Vec<u128>,
    mask: usize,
    len: usize,
}

impl SeqKeySet {
    pub fn new() -> Self {
        Self { slots: vec![0u128; 1024], mask: 1023, len: 0 }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn index(&self, key: u128) -> usize {
        mix(key as u64 ^ mix((key >> 64) as u64)) as usize & self.mask
    }

    /// Insert a packed sequence key; returns `true` if it was new.
    pub fn insert(&mut self, key: u128) -> bool {
        debug_assert_ne!(key, 0, "packed sequence keys are never 0");
        if (self.len + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mut i = self.index(key);
        loop {
            let slot = self.slots[i];
            if slot == key {
                return false;
            }
            if slot == 0 {
                self.slots[i] = key;
                self.len += 1;
                return true;
            }
            i = (i + 1) & self.mask;
        }
    }

    #[inline]
    pub fn contains(&self, key: u128) -> bool {
        let mut i = self.index(key);
        loop {
            let slot = self.slots[i];
            if slot == key {
                return true;
            }
            if slot == 0 {
                return false;
            }
            i = (i + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let doubled = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![0u128; doubled]);
        self.mask = doubled - 1;
        self.len = 0;
        for k in old.into_iter().filter(|&k| k != 0) {
            self.insert(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn kinds() -> Vec<StmtKind> {
        StmtKind::all()
    }

    #[test]
    fn pack_is_injective_over_the_alphabet() {
        let all = kinds();
        let mut seen = HashSet::new();
        for &a in all.iter().step_by(17) {
            for &b in all.iter().step_by(13) {
                assert!(seen.insert(pack2(a, b)));
                for &c in all.iter().step_by(29) {
                    assert!(seen.insert(pack3(a, b, c)));
                }
            }
        }
    }

    #[test]
    fn bigram_and_trigram_keys_never_collide() {
        let all = kinds();
        let (a, b) = (all[0], all[1]);
        // A trigram whose first two codes match a bigram still differs: its
        // low 16 bits are nonzero.
        for &c in &all {
            assert_ne!(pack2(a, b), pack3(a, b, c));
        }
    }

    #[test]
    fn unpack_inverts_pack() {
        let all = kinds();
        let (a, b, c) = (all[3], all[60], all[150]);
        assert_eq!(unpack(pack2(a, b)), vec![a.code(), b.code()]);
        assert_eq!(unpack(pack3(a, b, c)), vec![a.code(), b.code(), c.code()]);
    }

    #[test]
    fn set_matches_hashset_reference() {
        // Drive both sets with the same deterministic key stream and check
        // they agree on membership and size at every step.
        let mut set = NgramSet::new();
        let mut reference = HashSet::new();
        let all = kinds();
        let mut x = 0x9e37_79b9u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let a = all[(x >> 33) as usize % all.len()];
            let b = all[(x >> 13) as usize % all.len()];
            let key = if x & 1 == 0 {
                pack2(a, b)
            } else {
                pack3(a, b, all[(x >> 3) as usize % all.len()])
            };
            assert_eq!(set.insert(key), reference.insert(key));
            assert_eq!(set.len(), reference.len());
        }
        for &k in &reference {
            assert!(set.contains(k));
        }
    }

    #[test]
    fn growth_preserves_membership() {
        let mut set = NgramSet::with_capacity_pow2(8);
        let all = kinds();
        let mut keys = Vec::new();
        for i in 0..all.len() - 1 {
            let k = pack2(all[i], all[i + 1]);
            set.insert(k);
            keys.push(k);
        }
        assert!(set.slots.len() > 8);
        for k in keys {
            assert!(set.contains(k));
        }
    }

    #[test]
    fn sorted_keys_are_canonical() {
        let mut a = NgramSet::new();
        let mut b = NgramSet::new();
        let all = kinds();
        let grams = [pack2(all[5], all[2]), pack3(all[5], all[2], all[9]), pack2(all[0], all[1])];
        for &k in &grams {
            a.insert(k);
        }
        for &k in grams.iter().rev() {
            b.insert(k);
        }
        assert_eq!(a.sorted_keys(), b.sorted_keys());
        let sorted = a.sorted_keys();
        assert!(sorted.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn pack_seq_is_injective_across_lengths() {
        // Prefix vs extension and every length up to the cap must key apart.
        let all = kinds();
        let mut seen = HashSet::new();
        for len in 1..=MAX_PACKED_SEQ {
            for start in (0..40).step_by(7) {
                let seq: Vec<StmtKind> =
                    (0..len).map(|i| all[(start + i * 3) % all.len()]).collect();
                assert!(seen.insert(pack_seq(&seq)), "collision at len {len}");
            }
        }
        let a = vec![all[2]];
        let ab = vec![all[2], all[0]];
        assert_ne!(pack_seq(&a), pack_seq(&ab));
    }

    #[test]
    fn packed_seq_grams_match_pack2_pack3() {
        let all = kinds();
        let seq: Vec<StmtKind> =
            (0..MAX_PACKED_SEQ).map(|i| all[(i * 37 + 5) % all.len()]).collect();
        let key = pack_seq(&seq);
        assert_eq!(seq_len(key), seq.len());
        assert_eq!(unpack_seq(key), seq);
        for (i, w) in seq.windows(2).enumerate() {
            assert_eq!(gram2_at(key, i), pack2(w[0], w[1]));
        }
        for (i, w) in seq.windows(3).enumerate() {
            assert_eq!(gram3_at(key, i), pack3(w[0], w[1], w[2]));
        }
        let short = vec![all[0], all[3]];
        assert_eq!(seq_len(pack_seq(&short)), 2);
        assert_eq!(unpack_seq(pack_seq(&short)), short);
    }

    #[test]
    fn seq_key_set_matches_hashset_reference() {
        let all = kinds();
        let mut set = SeqKeySet::new();
        let mut reference = HashSet::new();
        let mut x = 0xdead_beefu64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let len = 1 + (x >> 60) as usize % MAX_PACKED_SEQ;
            let seq: Vec<StmtKind> =
                (0..len).map(|i| all[((x >> (i * 7)) as usize) % all.len()]).collect();
            let key = pack_seq(&seq);
            assert_eq!(set.insert(key), reference.insert(key));
            assert_eq!(set.len(), reference.len());
        }
        for &k in &reference {
            assert!(set.contains(k));
        }
    }
}
