//! Initial seed corpora.
//!
//! Small, conventional scripts in the style of the paper's Figure 1 — the
//! type sequences they contain are deliberately mundane (CREATE TABLE →
//! INSERT → … → SELECT), so everything beyond them must be *discovered*.

use lego_sqlast::{Dialect, TestCase};

/// The default seed corpus for a dialect, already parsed.
pub fn initial_corpus(dialect: Dialect) -> Vec<TestCase> {
    seed_scripts(dialect)
        .iter()
        .map(|s| {
            lego_sqlparser::parse_script(s)
                .unwrap_or_else(|e| panic!("bad built-in seed for {dialect:?}: {e}\n{s}"))
        })
        .collect()
}

/// The raw seed scripts (public so tests and docs can show them).
pub fn seed_scripts(dialect: Dialect) -> Vec<&'static str> {
    // Note the statement orderings: the planted *shallow* bugs (the ones
    // SQUIRREL-style mutation can reach) trigger on pairs like
    // INSERT→SELECT-with-ORDER-BY; the seeds stay one structure-mutation
    // away from them, never on top of them.
    let mut seeds = vec![
        // The paper's Figure 1 seed, reshuffled to keep the ORDER BY off the
        // INSERT/UPDATE pair boundaries.
        "CREATE TABLE t1 (v1 INT, v2 INT);\n\
         INSERT INTO t1 VALUES (1, 1);\n\
         INSERT INTO t1 VALUES (2, 1);\n\
         SELECT v2 FROM t1;\n\
         SELECT * FROM t1 ORDER BY v1;",
        // Insert / select with a WHERE and aggregate.
        "CREATE TABLE t2 (a INT, b VARCHAR(100));\n\
         INSERT INTO t2 VALUES (1, 'name1');\n\
         INSERT INTO t2 VALUES (3, 'name1');\n\
         SELECT * FROM t2 WHERE a > 1;\n\
         SELECT b, COUNT(*) FROM t2 GROUP BY b;",
        // Index + delete.
        "CREATE TABLE t3 (k INT PRIMARY KEY, v TEXT);\n\
         CREATE INDEX i3 ON t3 (v);\n\
         INSERT INTO t3 VALUES (1, 'x');\n\
         INSERT INTO t3 VALUES (2, 'y');\n\
         SELECT * FROM t3;\n\
         DELETE FROM t3 WHERE k = 1;",
        // Transaction block with an unconditional UPDATE.
        "CREATE TABLE t4 (n INT);\n\
         BEGIN;\n\
         INSERT INTO t4 VALUES (10);\n\
         UPDATE t4 SET n = 11;\n\
         COMMIT;\n\
         SELECT n FROM t4;",
    ];
    match dialect {
        Dialect::Postgres => {
            seeds.push(
                "CREATE TABLE t5 (x INT, y INT);\n\
                 INSERT INTO t5 VALUES (1, 2);\n\
                 ANALYZE t5;\n\
                 EXPLAIN SELECT * FROM t5;\n\
                 VACUUM t5;",
            );
        }
        Dialect::MySql | Dialect::MariaDb => {
            seeds.push(
                "CREATE TABLE t5 (x INT, y INT);\n\
                 INSERT IGNORE INTO t5 VALUES (1, 2);\n\
                 ANALYZE t5;\n\
                 SHOW TABLES;\n\
                 SELECT x FROM t5;",
            );
        }
        Dialect::Comdb2 => {
            seeds.push(
                "CREATE TABLE t5 (x INT, y INT);\n\
                 INSERT INTO t5 VALUES (1, 2);\n\
                 ANALYZE t5;\n\
                 SELECTV * FROM t5;",
            );
        }
    }
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;
    use lego_dbms::{Dbms, Outcome};

    #[test]
    fn seeds_parse_for_every_dialect() {
        for d in Dialect::ALL {
            let corpus = initial_corpus(d);
            assert!(corpus.len() >= 5);
        }
    }

    #[test]
    fn seeds_execute_without_errors_or_crashes() {
        for d in Dialect::ALL {
            for case in initial_corpus(d) {
                let mut db = Dbms::new(d);
                let r = db.execute_case(&case);
                assert!(matches!(r.outcome, Outcome::Ok), "{d:?}: {:?}", r.errors);
                assert!(r.errors.is_empty(), "{d:?}: {:?}\n{}", r.errors, case.to_sql());
            }
        }
    }

    #[test]
    fn seed_type_sequences_are_mundane() {
        // No seed may contain a trigger/rule/window statement — those must
        // be discovered by the fuzzer, not handed to it.
        for d in Dialect::ALL {
            for case in initial_corpus(d) {
                let sql = case.to_sql();
                assert!(!sql.contains("TRIGGER") && !sql.contains("RULE") && !sql.contains("OVER"));
            }
        }
    }
}
