//! Statement generation: a schema-aware generator able to produce a
//! statement of *every* statement type of every dialect.
//!
//! Used by sequence-oriented mutation (substituted/inserted statements),
//! by the instantiator when the AST library has no skeleton for a type yet,
//! and by the generation-based baseline fuzzers.

use lego_sqlast::ast::*;
use lego_sqlast::expr::*;
use lego_sqlast::kind::{DdlVerb, ObjectKind, StandaloneKind, StmtKind};
use lego_sqlast::Dialect;
use rand::rngs::SmallRng;
use rand::Rng;

/// A lightweight model of the schema produced by a statement prefix.
#[derive(Clone, Debug, Default)]
pub struct SchemaModel {
    pub tables: Vec<TableModel>,
}

#[derive(Clone, Debug)]
pub struct TableModel {
    pub name: String,
    pub columns: Vec<(String, DataType)>,
    /// Columns that must appear in an INSERT column list (NOT NULL or
    /// PRIMARY KEY, without a DEFAULT to fall back on).
    pub required: Vec<String>,
    /// Columns that reject explicit NULL values (NOT NULL or PRIMARY KEY,
    /// with or without a DEFAULT).
    pub not_null: Vec<String>,
    /// Columns that reject duplicate values (UNIQUE or PRIMARY KEY).
    pub unique: Vec<String>,
}

impl TableModel {
    pub fn requires(&self, column: &str) -> bool {
        self.required.iter().any(|r| r.eq_ignore_ascii_case(column))
    }

    pub fn is_not_null(&self, column: &str) -> bool {
        self.not_null.iter().any(|r| r.eq_ignore_ascii_case(column))
    }

    pub fn is_unique(&self, column: &str) -> bool {
        self.unique.iter().any(|r| r.eq_ignore_ascii_case(column))
    }
}

impl SchemaModel {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn table(&self, name: &str) -> Option<&TableModel> {
        self.tables.iter().find(|t| t.name.eq_ignore_ascii_case(name))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.table(name).is_some()
    }

    pub fn random_table<'a>(&'a self, rng: &mut SmallRng) -> Option<&'a TableModel> {
        if self.tables.is_empty() {
            None
        } else {
            Some(&self.tables[rng.gen_range(0..self.tables.len())])
        }
    }

    pub fn fresh_table_name(&self, rng: &mut SmallRng) -> String {
        for _ in 0..64 {
            let name = format!("v{}", rng.gen_range(0..100));
            if !self.has_table(&name) {
                return name;
            }
        }
        format!("v{}", self.tables.len() + 100)
    }

    /// Update the model with the effect of one statement (tables created,
    /// dropped, renamed, altered; views modelled as tables for reference
    /// purposes).
    pub fn observe(&mut self, stmt: &Statement) {
        match stmt {
            Statement::CreateTable(c) if !self.has_table(&c.name) => {
                use lego_sqlast::ast::ColumnConstraint as CC;
                let mut required = Vec::new();
                let mut not_null = Vec::new();
                let mut unique = Vec::new();
                for col in &c.columns {
                    let nn =
                        col.constraints.iter().any(|k| matches!(k, CC::NotNull | CC::PrimaryKey));
                    let has_default = col.constraints.iter().any(|k| matches!(k, CC::Default(_)));
                    if nn {
                        not_null.push(col.name.clone());
                        if !has_default {
                            required.push(col.name.clone());
                        }
                    }
                    if col.constraints.iter().any(|k| matches!(k, CC::Unique | CC::PrimaryKey)) {
                        unique.push(col.name.clone());
                    }
                }
                self.tables.push(TableModel {
                    name: c.name.clone(),
                    columns: c.columns.iter().map(|col| (col.name.clone(), col.ty)).collect(),
                    required,
                    not_null,
                    unique,
                });
            }
            Statement::CreateTableAs { name, .. } if !self.has_table(name) => {
                self.tables.push(TableModel {
                    name: name.clone(),
                    columns: vec![("column1".into(), DataType::Int)],
                    required: Vec::new(),
                    not_null: Vec::new(),
                    unique: Vec::new(),
                });
            }
            Statement::CreateView(v) if !self.has_table(&v.name) => {
                // Approximate view columns by the underlying table's.
                let cols = lego_sqlast::visit::table_names(stmt)
                    .iter()
                    .skip(1)
                    .find_map(|t| self.table(t).map(|t| t.columns.clone()))
                    .unwrap_or_else(|| vec![("column1".into(), DataType::Int)]);
                self.tables.push(TableModel {
                    name: v.name.clone(),
                    columns: cols,
                    required: Vec::new(),
                    not_null: Vec::new(),
                    unique: Vec::new(),
                });
            }
            Statement::Drop(d) if matches!(d.object, ObjectKind::Table | ObjectKind::View) => {
                self.tables.retain(|t| !t.name.eq_ignore_ascii_case(&d.name));
            }
            Statement::AlterTable(a) => {
                let name = a.name.clone();
                if let Some(t) = self.tables.iter_mut().find(|t| t.name.eq_ignore_ascii_case(&name))
                {
                    match &a.action {
                        AlterTableAction::AddColumn(c) => t.columns.push((c.name.clone(), c.ty)),
                        AlterTableAction::DropColumn(c) => {
                            t.columns.retain(|(n, _)| !n.eq_ignore_ascii_case(c));
                            t.required.retain(|n| !n.eq_ignore_ascii_case(c));
                            t.not_null.retain(|n| !n.eq_ignore_ascii_case(c));
                            t.unique.retain(|n| !n.eq_ignore_ascii_case(c));
                        }
                        AlterTableAction::RenameColumn { old, new } => {
                            if let Some(col) =
                                t.columns.iter_mut().find(|(n, _)| n.eq_ignore_ascii_case(old))
                            {
                                col.0 = new.clone();
                            }
                            for list in [&mut t.required, &mut t.not_null, &mut t.unique] {
                                if let Some(r) =
                                    list.iter_mut().find(|n| n.eq_ignore_ascii_case(old))
                                {
                                    *r = new.clone();
                                }
                            }
                        }
                        AlterTableAction::RenameTo(new) => t.name = new.clone(),
                        AlterTableAction::AlterColumnType { name, ty } => {
                            if let Some(col) =
                                t.columns.iter_mut().find(|(n, _)| n.eq_ignore_ascii_case(name))
                            {
                                col.1 = *ty;
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }

    /// Build the model for a whole statement prefix.
    pub fn of_statements(stmts: &[Statement]) -> Self {
        let mut m = Self::new();
        for s in stmts {
            m.observe(s);
        }
        m
    }
}

/// Random literal of a given type.
pub fn gen_literal(ty: DataType, rng: &mut SmallRng) -> Expr {
    if rng.gen_bool(0.08) {
        return Expr::Null;
    }
    gen_literal_not_null(ty, rng)
}

/// Random literal that is never NULL — for columns with NOT NULL / PRIMARY
/// KEY constraints, where a NULL would make the whole case semantically
/// invalid.
pub fn gen_literal_not_null(ty: DataType, rng: &mut SmallRng) -> Expr {
    match ty {
        t if t.is_numeric() => {
            if rng.gen_bool(0.2) {
                Expr::Float(f64::from(rng.gen_range(-1000i32..10_000)) / 10.0)
            } else {
                Expr::Integer(rng.gen_range(-100i64..10_000))
            }
        }
        DataType::Bool => Expr::Bool(rng.gen_bool(0.5)),
        t if t.is_textual() => {
            const WORDS: &[&str] = &["name1", "x", "Water", "abc", "", "z%", "_a"];
            Expr::Str(WORDS[rng.gen_range(0..WORDS.len())].to_string())
        }
        _ => Expr::Str(format!("blob{}", rng.gen_range(0..16))),
    }
}

fn random_type(rng: &mut SmallRng) -> DataType {
    DataType::COMMON[rng.gen_range(0..DataType::COMMON.len())]
}

/// Random scalar expression over the given columns.
pub fn gen_expr(cols: &[(String, DataType)], rng: &mut SmallRng, depth: usize) -> Expr {
    let col = |rng: &mut SmallRng| -> Expr {
        if cols.is_empty() {
            Expr::Integer(1)
        } else {
            Expr::col(cols[rng.gen_range(0..cols.len())].0.clone())
        }
    };
    if depth == 0 {
        return if rng.gen_bool(0.5) { col(rng) } else { gen_literal(random_type(rng), rng) };
    }
    match rng.gen_range(0..10) {
        0..=2 => gen_literal(random_type(rng), rng),
        3..=4 => col(rng),
        5 => {
            let ops = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div, BinOp::Mod, BinOp::Concat];
            Expr::binary(
                gen_expr(cols, rng, depth - 1),
                ops[rng.gen_range(0..ops.len())],
                gen_expr(cols, rng, depth - 1),
            )
        }
        6 => {
            let ops = [BinOp::Eq, BinOp::Ne, BinOp::Lt, BinOp::Le, BinOp::Gt, BinOp::Ge];
            Expr::binary(
                gen_expr(cols, rng, depth - 1),
                ops[rng.gen_range(0..ops.len())],
                gen_expr(cols, rng, depth - 1),
            )
        }
        7 => match rng.gen_range(0..4) {
            0 => Expr::IsNull { expr: Box::new(col(rng)), negated: rng.gen_bool(0.5) },
            1 => Expr::Like {
                expr: Box::new(col(rng)),
                pattern: Box::new(Expr::Str(if rng.gen_bool(0.5) { "x%" } else { "%a_" }.into())),
                negated: rng.gen_bool(0.3),
            },
            2 => Expr::Between {
                expr: Box::new(col(rng)),
                low: Box::new(gen_literal(DataType::Int, rng)),
                high: Box::new(gen_literal(DataType::Int, rng)),
                negated: rng.gen_bool(0.3),
            },
            _ => Expr::InList {
                expr: Box::new(col(rng)),
                list: (0..rng.gen_range(1..4)).map(|_| gen_literal(DataType::Int, rng)).collect(),
                negated: rng.gen_bool(0.3),
            },
        },
        8 => {
            const FNS: &[&str] =
                &["ABS", "LENGTH", "UPPER", "LOWER", "COALESCE", "TRIM", "HEX", "SIGN", "TYPEOF"];
            Expr::Func(FuncCall::new(
                FNS[rng.gen_range(0..FNS.len())],
                vec![gen_expr(cols, rng, depth - 1)],
            ))
        }
        _ => Expr::Case {
            operand: None,
            whens: vec![(gen_expr(cols, rng, depth - 1), gen_literal(DataType::Int, rng))],
            else_: Some(Box::new(gen_literal(DataType::Int, rng))),
        },
    }
}

fn gen_window_expr(cols: &[(String, DataType)], rng: &mut SmallRng) -> Expr {
    const WFNS: &[&str] = &["ROW_NUMBER", "RANK", "DENSE_RANK", "LEAD", "LAG", "SUM", "COUNT"];
    let name = WFNS[rng.gen_range(0..WFNS.len())];
    let args = if matches!(name, "ROW_NUMBER" | "RANK" | "DENSE_RANK") {
        vec![]
    } else {
        vec![gen_expr(cols, rng, 0)]
    };
    let order_col = if cols.is_empty() {
        Expr::Integer(1)
    } else {
        Expr::col(cols[rng.gen_range(0..cols.len())].0.clone())
    };
    let frame = if rng.gen_bool(0.3) {
        Some(FrameClause {
            unit: if rng.gen_bool(0.5) { FrameUnit::Rows } else { FrameUnit::Range },
            start: FrameBound::Preceding(Box::new(Expr::Integer(rng.gen_range(0..100)))),
            end: Some(FrameBound::Following(Box::new(Expr::Integer(rng.gen_range(0..100))))),
        })
    } else {
        None
    };
    Expr::Window {
        func: FuncCall::new(name, args),
        spec: WindowSpec {
            partition_by: if rng.gen_bool(0.3) && !cols.is_empty() {
                vec![Expr::col(cols[rng.gen_range(0..cols.len())].0.clone())]
            } else {
                vec![]
            },
            order_by: vec![OrderItem { expr: order_col, desc: rng.gen_bool(0.3) }],
            frame,
        },
    }
}

/// Random query over the schema.
pub fn gen_query(
    schema: &SchemaModel,
    dialect: Dialect,
    rng: &mut SmallRng,
    depth: usize,
) -> Query {
    let table = schema.random_table(rng).cloned();
    let (from, cols): (Vec<TableRef>, Vec<(String, DataType)>) = match &table {
        None => (vec![], vec![]),
        Some(t) => {
            let mut from = vec![TableRef::named(t.name.clone())];
            let mut cols = t.columns.clone();
            if rng.gen_bool(0.2) && depth > 0 {
                if let Some(t2) = schema.random_table(rng) {
                    let kinds = [JoinKind::Inner, JoinKind::Left, JoinKind::Right, JoinKind::Cross];
                    let kind = kinds[rng.gen_range(0..kinds.len())];
                    let on = if kind == JoinKind::Cross || t2.columns.is_empty() || cols.is_empty()
                    {
                        None
                    } else {
                        Some(Expr::eq(
                            Expr::Column(ColumnRef::qualified(
                                t.name.clone(),
                                cols[rng.gen_range(0..cols.len())].0.clone(),
                            )),
                            Expr::Column(ColumnRef::qualified(
                                t2.name.clone(),
                                t2.columns[rng.gen_range(0..t2.columns.len())].0.clone(),
                            )),
                        ))
                    };
                    let left = from.pop().unwrap();
                    from.push(TableRef::Join {
                        left: Box::new(left),
                        right: Box::new(TableRef::named(t2.name.clone())),
                        kind,
                        on,
                    });
                    cols.extend(t2.columns.clone());
                }
            }
            (from, cols)
        }
    };
    let group = !cols.is_empty() && rng.gen_bool(0.15);
    let projection = if group {
        let key = cols[rng.gen_range(0..cols.len())].0.clone();
        vec![
            SelectItem::Expr { expr: Expr::col(key), alias: None },
            SelectItem::Expr {
                expr: Expr::Func(if rng.gen_bool(0.5) {
                    FuncCall::star("COUNT")
                } else {
                    FuncCall::new("SUM", vec![gen_expr(&cols, rng, 0)])
                }),
                alias: None,
            },
        ]
    } else if from.is_empty() || rng.gen_bool(0.4) {
        if from.is_empty() {
            vec![SelectItem::Expr { expr: gen_literal(DataType::Int, rng), alias: None }]
        } else {
            vec![SelectItem::Star]
        }
    } else {
        let mut items = Vec::new();
        for _ in 0..rng.gen_range(1..3) {
            let expr = if rng.gen_bool(0.12)
                && Dialect::supports(dialect, StmtKind::Other(StandaloneKind::Select))
                && dialect != Dialect::Comdb2
            {
                gen_window_expr(&cols, rng)
            } else if rng.gen_bool(0.15) {
                Expr::Func(if rng.gen_bool(0.5) {
                    FuncCall::star("COUNT")
                } else {
                    FuncCall::new("MAX", vec![gen_expr(&cols, rng, 0)])
                })
            } else {
                gen_expr(&cols, rng, 1)
            };
            let alias =
                if rng.gen_bool(0.25) { Some(format!("a{}", rng.gen_range(0..8))) } else { None };
            items.push(SelectItem::Expr { expr, alias });
        }
        items
    };
    let group_by = if group {
        vec![match &projection[0] {
            SelectItem::Expr { expr, .. } => expr.clone(),
            _ => Expr::Integer(1),
        }]
    } else {
        vec![]
    };
    let having = if group && rng.gen_bool(0.3) {
        Some(Expr::binary(Expr::Func(FuncCall::star("COUNT")), BinOp::Gt, Expr::Integer(1)))
    } else {
        None
    };
    let where_ =
        if !from.is_empty() && rng.gen_bool(0.5) { Some(gen_expr(&cols, rng, 2)) } else { None };
    let mut body = SetExpr::Select(Box::new(Select {
        distinct: rng.gen_bool(0.12),
        projection,
        from,
        where_,
        group_by,
        having,
    }));
    if depth > 0 && rng.gen_bool(0.1) {
        let ops = [SetOp::Union, SetOp::Except, SetOp::Intersect];
        let right = gen_query(schema, dialect, rng, 0).body;
        body = SetExpr::SetOp {
            op: ops[rng.gen_range(0..ops.len())],
            all: rng.gen_bool(0.4),
            left: Box::new(body),
            right: Box::new(right),
        };
    }
    let order_by = if rng.gen_bool(0.4) && !cols.is_empty() {
        vec![OrderItem {
            expr: Expr::col(cols[rng.gen_range(0..cols.len())].0.clone()),
            desc: rng.gen_bool(0.4),
        }]
    } else {
        vec![]
    };
    Query {
        body,
        order_by,
        limit: if rng.gen_bool(0.2) { Some(Expr::Integer(rng.gen_range(1..50))) } else { None },
        offset: if rng.gen_bool(0.08) { Some(Expr::Integer(rng.gen_range(0..5))) } else { None },
    }
}

fn gen_insert(schema: &SchemaModel, dialect: Dialect, rng: &mut SmallRng, replace: bool) -> Insert {
    let (table, columns) = match schema.random_table(rng) {
        Some(t) => (t.name.clone(), t.columns.clone()),
        None => ("t1".to_string(), vec![("v1".into(), DataType::Int)]),
    };
    let source = if rng.gen_bool(0.1) {
        InsertSource::Query(Box::new(gen_query(schema, dialect, rng, 0)))
    } else {
        let nrows = rng.gen_range(1..4);
        let rows = (0..nrows)
            .map(|_| columns.iter().map(|(_, ty)| gen_literal(*ty, rng)).collect())
            .collect();
        InsertSource::Values(rows)
    };
    let mysqlish = matches!(dialect, Dialect::MySql | Dialect::MariaDb);
    Insert {
        table,
        columns: vec![],
        source,
        ignore: !replace && mysqlish && rng.gen_bool(0.25),
        replace,
        low_priority: !replace && mysqlish && rng.gen_bool(0.1),
    }
}

fn generic_name(obj: ObjectKind, rng: &mut SmallRng) -> String {
    // Small per-kind name pools so CREATE/ALTER/DROP of the same object can
    // meet (the order-sensitive branches in the generic catalog).
    format!("o{}_{}", obj as u16, rng.gen_range(0..3))
}

fn misc_arg(kind: StandaloneKind, schema: &SchemaModel, rng: &mut SmallRng) -> Option<String> {
    use StandaloneKind as K;
    let table = schema
        .tables
        .get(
            rng.gen_range(0..schema.tables.len().max(1)).min(schema.tables.len().saturating_sub(1)),
        )
        .map(|t| t.name.clone())
        .unwrap_or_else(|| "t1".into());
    Some(match kind {
        K::DeclareCursor | K::Fetch | K::Move | K::CloseCursor => {
            format!("c{}", rng.gen_range(0..3))
        }
        K::PrepareStmt | K::ExecuteStmt | K::Deallocate => format!("p{}", rng.gen_range(0..3)),
        K::ExecuteImmediate => "'SELECT 1'".into(),
        K::XaBegin | K::XaCommit | K::XaRollback => format!("'x{}'", rng.gen_range(0..2)),
        K::PrepareTransaction | K::CommitPrepared | K::RollbackPrepared => {
            format!("'g{}'", rng.gen_range(0..2))
        }
        K::SetTransaction => "ISOLATION LEVEL READ COMMITTED".into(),
        K::SetConstraints => "ALL DEFERRED".into(),
        K::SetRole | K::SetSessionAuthorization => {
            if rng.gen_bool(0.5) {
                "alice".into()
            } else {
                "NONE".into()
            }
        }
        K::SetDefaultRole => "alice".into(),
        K::SetPassword => "FOR alice".into(),
        K::RenameUser => "alice TO bob".into(),
        K::RenameTable => {
            let new = format!("v{}", rng.gen_range(0..100));
            format!("{table} TO {new}")
        }
        K::CheckTable
        | K::ChecksumTable
        | K::OptimizeTable
        | K::RepairTable
        | K::Rebuild
        | K::TableStmt
        | K::Describe
        | K::ShowCreateTable
        | K::ShowColumns
        | K::ShowIndex => table,
        K::Use => format!("db{}", rng.gen_range(0..2)),
        K::KillStmt => format!("{}", rng.gen_range(1..100)),
        K::HelpStmt => "'SELECT'".into(),
        K::Handler => format!("{table} OPEN"),
        K::ExecProcedure => format!("p{} ( )", rng.gen_range(0..3)),
        K::Put => format!("counter{} ON", rng.gen_range(0..3)),
        K::BulkImport => table,
        K::LoadData | K::LoadXml | K::ImportTable => format!("INFILE 'data' INTO TABLE {table}"),
        K::LockTables => format!("{table} READ"),
        K::Signal | K::Resignal => "SQLSTATE '45000'".into(),
        K::GetDiagnostics => "cnt = ROW_COUNT".into(),
        K::PurgeBinaryLogs => "TO 'binlog.000001'".into(),
        K::ChangeMaster | K::ChangeReplicationFilter => "TO master_host = 'h'".into(),
        K::CacheIndex => format!("{table} IN hot"),
        K::LoadIndexIntoCache => table,
        K::Binlog => "'AAAA'".into(),
        K::FlushStmt => "PRIVILEGES".into(),
        K::InstallPlugin | K::UninstallPlugin => "plug SONAME 'plug.so'".into(),
        K::CloneStmt => "LOCAL DATA DIRECTORY 'd'".into(),
        K::BackupStage => "START".into(),
        K::ShowGrants => "FOR alice".into(),
        K::ShowEngine => "innodb STATUS".into(),
        K::DropOwned | K::ReassignOwned => "BY alice".into(),
        K::ImportForeignSchema => format!("s{}", rng.gen_range(0..2)),
        K::AlterSystem => "SET checkpoint_timeout = 60".into(),
        K::AlterDefaultPrivileges => "GRANT SELECT ON TABLES TO alice".into(),
        K::Load => "'module'".into(),
        K::Merge => format!("INTO {table} USING {table} ON 1 = 1"),
        _ => return None,
    })
}

/// Generate a statement of the requested type against the current schema.
pub fn gen_statement(
    kind: StmtKind,
    schema: &SchemaModel,
    dialect: Dialect,
    rng: &mut SmallRng,
) -> Statement {
    use StandaloneKind as K;
    let table_name = |rng: &mut SmallRng| -> String {
        schema.random_table(rng).map(|t| t.name.clone()).unwrap_or_else(|| "t1".into())
    };
    match kind {
        StmtKind::Ddl(DdlVerb::Create, ObjectKind::Table) => {
            let name = schema.fresh_table_name(rng);
            let ncols = rng.gen_range(1..5);
            let mut columns = Vec::with_capacity(ncols);
            for i in 0..ncols {
                let mut def = ColumnDef::new(format!("v{}", i + 1), random_type(rng));
                if i == 0 && rng.gen_bool(0.3) {
                    def.constraints.push(ColumnConstraint::PrimaryKey);
                } else {
                    if rng.gen_bool(0.15) {
                        def.constraints.push(ColumnConstraint::Unique);
                    }
                    if rng.gen_bool(0.1) {
                        def.constraints.push(ColumnConstraint::NotNull);
                    }
                    if rng.gen_bool(0.1) {
                        def.constraints.push(ColumnConstraint::Default(gen_literal(def.ty, rng)));
                    }
                }
                columns.push(def);
            }
            Statement::CreateTable(CreateTable {
                name,
                temporary: rng.gen_bool(0.1),
                if_not_exists: rng.gen_bool(0.1),
                columns,
                constraints: vec![],
            })
        }
        StmtKind::Ddl(DdlVerb::Create, ObjectKind::View | ObjectKind::MaterializedView) => {
            Statement::CreateView(CreateView {
                name: schema.fresh_table_name(rng),
                or_replace: rng.gen_bool(0.2),
                materialized: matches!(kind, StmtKind::Ddl(_, ObjectKind::MaterializedView)),
                query: Box::new(gen_query(schema, dialect, rng, 0)),
            })
        }
        StmtKind::Ddl(DdlVerb::Create, ObjectKind::Index) => {
            let (table, column) = match schema.random_table(rng) {
                Some(t) if !t.columns.is_empty() => {
                    (t.name.clone(), t.columns[rng.gen_range(0..t.columns.len())].0.clone())
                }
                _ => ("t1".into(), "v1".into()),
            };
            Statement::CreateIndex(CreateIndex {
                name: format!("i{}", rng.gen_range(0..10)),
                unique: rng.gen_bool(0.3),
                table,
                columns: vec![column],
            })
        }
        StmtKind::Ddl(DdlVerb::Create, ObjectKind::Trigger) => {
            let table = table_name(rng);
            let events = [DmlEvent::Insert, DmlEvent::Update, DmlEvent::Delete];
            let action = match rng.gen_range(0..3) {
                0 => Statement::Insert(gen_insert(schema, dialect, rng, false)),
                1 => Statement::Delete(Delete { table: table.clone(), where_: None }),
                _ => Statement::Select(SelectStmt {
                    query: Box::new(gen_query(schema, dialect, rng, 0)),
                    variant: SelectVariant::Plain,
                }),
            };
            Statement::CreateTrigger(CreateTrigger {
                name: format!("tg{}", rng.gen_range(0..10)),
                timing: if rng.gen_bool(0.5) {
                    TriggerTiming::After
                } else {
                    TriggerTiming::Before
                },
                event: events[rng.gen_range(0..events.len())],
                table,
                for_each_row: rng.gen_bool(0.7),
                action: Box::new(action),
            })
        }
        StmtKind::Ddl(DdlVerb::Create, ObjectKind::Rule) => {
            let events = [DmlEvent::Insert, DmlEvent::Update, DmlEvent::Delete];
            // NOTIFY actions dominate: DO INSTEAD NOTIFY is the idiomatic
            // PostgreSQL rule in the wild (and the case-study shape).
            let action = match rng.gen_range(0..4) {
                0 | 1 => Some(Box::new(Statement::Notify {
                    channel: format!("ch{}", rng.gen_range(0..4)),
                    payload: None,
                })),
                2 => None,
                _ => Some(Box::new(Statement::Delete(Delete {
                    table: table_name(rng),
                    where_: None,
                }))),
            };
            Statement::CreateRule(CreateRule {
                name: format!("r{}", rng.gen_range(0..10)),
                or_replace: rng.gen_bool(0.4),
                table: table_name(rng),
                event: events[rng.gen_range(0..events.len())],
                instead: rng.gen_bool(0.6),
                action,
            })
        }
        StmtKind::Ddl(DdlVerb::Alter, ObjectKind::Table) => {
            let (name, col) = match schema.random_table(rng) {
                Some(t) if !t.columns.is_empty() => {
                    (t.name.clone(), t.columns[rng.gen_range(0..t.columns.len())].0.clone())
                }
                _ => ("t1".into(), "v1".into()),
            };
            let action = match rng.gen_range(0..5) {
                0 => AlterTableAction::AddColumn(ColumnDef::new(
                    format!("c{}", rng.gen_range(0..20)),
                    random_type(rng),
                )),
                1 => AlterTableAction::DropColumn(col),
                2 => AlterTableAction::RenameColumn {
                    old: col,
                    new: format!("c{}", rng.gen_range(0..20)),
                },
                3 => AlterTableAction::RenameTo(schema.fresh_table_name(rng)),
                _ => AlterTableAction::AlterColumnType { name: col, ty: random_type(rng) },
            };
            Statement::AlterTable(AlterTable { name, action })
        }
        StmtKind::Ddl(DdlVerb::Drop, obj) => {
            let name = match obj {
                ObjectKind::Table | ObjectKind::View | ObjectKind::MaterializedView => {
                    table_name(rng)
                }
                ObjectKind::Index => format!("i{}", rng.gen_range(0..10)),
                ObjectKind::Trigger => format!("tg{}", rng.gen_range(0..10)),
                ObjectKind::Rule => format!("r{}", rng.gen_range(0..10)),
                other => generic_name(other, rng),
            };
            let on_table = if matches!(obj, ObjectKind::Trigger | ObjectKind::Rule) {
                Some(table_name(rng))
            } else {
                None
            };
            Statement::Drop(DropStmt { object: obj, if_exists: rng.gen_bool(0.3), name, on_table })
        }
        StmtKind::Ddl(verb, obj) => Statement::GenericDdl(GenericDdl {
            verb,
            object: obj,
            name: generic_name(obj, rng),
            arg: None,
        }),
        StmtKind::Other(K::Select) => Statement::Select(SelectStmt {
            query: Box::new(gen_query(schema, dialect, rng, 1)),
            variant: SelectVariant::Plain,
        }),
        StmtKind::Other(K::SelectV) => Statement::Select(SelectStmt {
            query: Box::new(gen_query(schema, dialect, rng, 0)),
            variant: SelectVariant::SelectV,
        }),
        StmtKind::Other(K::SelectInto) => Statement::Select(SelectStmt {
            query: Box::new(gen_query(schema, dialect, rng, 0)),
            variant: SelectVariant::Into(schema.fresh_table_name(rng)),
        }),
        StmtKind::Other(K::Insert) => Statement::Insert(gen_insert(schema, dialect, rng, false)),
        StmtKind::Other(K::Replace) => Statement::Insert(gen_insert(schema, dialect, rng, true)),
        StmtKind::Other(K::Update) => {
            let (table, cols) = match schema.random_table(rng) {
                Some(t) if !t.columns.is_empty() => (t.name.clone(), t.columns.clone()),
                _ => ("t1".into(), vec![("v1".into(), DataType::Int)]),
            };
            let target = cols[rng.gen_range(0..cols.len())].clone();
            Statement::Update(Update {
                table,
                assignments: vec![(target.0, gen_literal(target.1, rng))],
                where_: if rng.gen_bool(0.7) { Some(gen_expr(&cols, rng, 1)) } else { None },
            })
        }
        StmtKind::Other(K::Delete) => {
            let (table, cols) = match schema.random_table(rng) {
                Some(t) => (t.name.clone(), t.columns.clone()),
                None => ("t1".into(), vec![("v1".into(), DataType::Int)]),
            };
            Statement::Delete(Delete {
                table,
                where_: if rng.gen_bool(0.7) { Some(gen_expr(&cols, rng, 1)) } else { None },
            })
        }
        StmtKind::Other(K::With) => {
            let cte_name = schema.fresh_table_name(rng);
            let body_dml = rng.gen_bool(0.5);
            let cte = Cte {
                name: cte_name,
                body: if rng.gen_bool(0.6) && dialect == Dialect::Postgres {
                    CteBody::Dml(Box::new(Statement::Insert(gen_insert(
                        schema, dialect, rng, false,
                    ))))
                } else {
                    CteBody::Query(Box::new(gen_query(schema, dialect, rng, 0)))
                },
            };
            let body: Statement = if body_dml {
                Statement::Delete(Delete {
                    table: table_name(rng),
                    where_: Some(gen_expr(&[], rng, 1)),
                })
            } else {
                Statement::Select(SelectStmt {
                    query: Box::new(gen_query(schema, dialect, rng, 0)),
                    variant: SelectVariant::Plain,
                })
            };
            Statement::With(WithStmt { ctes: vec![cte], body: Box::new(body) })
        }
        StmtKind::Other(K::Values) => Statement::Values(
            (0..rng.gen_range(1..3))
                .map(|_| {
                    (0..rng.gen_range(1..4)).map(|_| gen_literal(DataType::Int, rng)).collect()
                })
                .collect(),
        ),
        StmtKind::Other(K::Truncate) => Statement::Truncate { table: table_name(rng) },
        StmtKind::Other(K::Copy) => {
            if rng.gen_bool(0.5) {
                Statement::Copy(CopyStmt {
                    source: CopySource::Query(Box::new(gen_query(schema, dialect, rng, 0))),
                    direction: CopyDirection::To,
                    target: "STDOUT".into(),
                    options: if rng.gen_bool(0.5) {
                        vec!["CSV".into(), "HEADER".into()]
                    } else {
                        vec![]
                    },
                })
            } else {
                Statement::Copy(CopyStmt {
                    source: CopySource::Table { name: table_name(rng), columns: vec![] },
                    direction: if rng.gen_bool(0.5) {
                        CopyDirection::To
                    } else {
                        CopyDirection::From
                    },
                    target: if rng.gen_bool(0.5) { "STDOUT".into() } else { "STDIN".into() },
                    options: vec![],
                })
            }
        }
        StmtKind::Other(K::Grant) | StmtKind::Other(K::Revoke) => {
            const PRIVS: &[&str] = &["SELECT", "INSERT", "UPDATE", "DELETE", "ALL"];
            let g = GrantStmt {
                privilege: PRIVS[rng.gen_range(0..PRIVS.len())].into(),
                object: table_name(rng),
                grantee: if rng.gen_bool(0.7) { "alice".into() } else { "bob".into() },
            };
            if kind == StmtKind::Other(K::Grant) {
                Statement::Grant(g)
            } else {
                Statement::Revoke(g)
            }
        }
        StmtKind::Other(K::Begin) => Statement::Begin,
        StmtKind::Other(K::StartTransaction) => Statement::StartTransaction,
        StmtKind::Other(K::Commit) => Statement::Commit,
        StmtKind::Other(K::End) => Statement::End,
        StmtKind::Other(K::Rollback) => Statement::Rollback,
        StmtKind::Other(K::Abort) => Statement::Abort,
        StmtKind::Other(K::Savepoint) => Statement::Savepoint(format!("sp{}", rng.gen_range(0..3))),
        StmtKind::Other(K::ReleaseSavepoint) => {
            Statement::ReleaseSavepoint(format!("sp{}", rng.gen_range(0..3)))
        }
        StmtKind::Other(K::RollbackToSavepoint) => {
            Statement::RollbackToSavepoint(format!("sp{}", rng.gen_range(0..3)))
        }
        StmtKind::Other(K::Set) => {
            const VARS: &[(&str, &str)] = &[
                ("search_path", "public"),
                ("sql_mode", "strict"),
                ("work_mem", "64"),
                ("explicit_for_timestamp", "OFF"),
            ];
            let (name, value) = VARS[rng.gen_range(0..VARS.len())];
            Statement::Set(SetStmt {
                scope: if rng.gen_bool(0.2) { Some("@@SESSION.".into()) } else { None },
                name: name.into(),
                value: value.into(),
            })
        }
        StmtKind::Other(K::Reset) => Statement::Reset("search_path".into()),
        StmtKind::Other(K::Show) => {
            Statement::Show(if rng.gen_bool(0.5) { "server_version" } else { "search_path" }.into())
        }
        StmtKind::Other(K::Pragma) => Statement::Pragma {
            name: "foreign_keys".into(),
            value: Some(if rng.gen_bool(0.5) { "ON" } else { "OFF" }.into()),
        },
        StmtKind::Other(K::Analyze) => {
            Statement::Analyze(if rng.gen_bool(0.7) { Some(table_name(rng)) } else { None })
        }
        StmtKind::Other(K::Vacuum) => Statement::Vacuum {
            table: if rng.gen_bool(0.7) { Some(table_name(rng)) } else { None },
            full: rng.gen_bool(0.3),
        },
        StmtKind::Other(K::Explain) => {
            Statement::Explain(Box::new(Statement::Select(SelectStmt {
                query: Box::new(gen_query(schema, dialect, rng, 0)),
                variant: SelectVariant::Plain,
            })))
        }
        StmtKind::Other(K::Reindex) => Statement::Reindex(Some(table_name(rng))),
        StmtKind::Other(K::Checkpoint) => Statement::Checkpoint,
        StmtKind::Other(K::Cluster) => Statement::Cluster(Some(table_name(rng))),
        StmtKind::Other(K::Discard) => {
            Statement::Discard(if rng.gen_bool(0.5) { "ALL" } else { "TEMP" }.into())
        }
        StmtKind::Other(K::Listen) => Statement::Listen(format!("ch{}", rng.gen_range(0..4))),
        StmtKind::Other(K::Notify) => Statement::Notify {
            channel: format!("ch{}", rng.gen_range(0..4)),
            payload: if rng.gen_bool(0.3) { Some("hi".into()) } else { None },
        },
        StmtKind::Other(K::Unlisten) => Statement::Unlisten(format!("ch{}", rng.gen_range(0..4))),
        StmtKind::Other(K::LockTable) => Statement::LockTable {
            table: table_name(rng),
            mode: if rng.gen_bool(0.5) { Some("EXCLUSIVE".into()) } else { None },
        },
        StmtKind::Other(K::Comment) => Statement::Comment {
            object: ObjectKind::Table,
            name: table_name(rng),
            text: "generated".into(),
        },
        StmtKind::Other(K::Call) => Statement::Call {
            name: format!("p{}", rng.gen_range(0..3)),
            args: vec![gen_literal(DataType::Int, rng)],
        },
        StmtKind::Other(K::RefreshMaterializedView) => Statement::RefreshMatView(table_name(rng)),
        StmtKind::Other(K::CreateTableAs) => Statement::CreateTableAs {
            name: schema.fresh_table_name(rng),
            query: Box::new(gen_query(schema, dialect, rng, 0)),
        },
        StmtKind::Other(k) => Statement::Misc(MiscStmt { kind: k, arg: misc_arg(k, schema, rng) }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn schema_with_table() -> SchemaModel {
        let mut m = SchemaModel::new();
        m.observe(&lego_sqlparser::parse_statement("CREATE TABLE t1 (v1 INT, v2 TEXT);").unwrap());
        m
    }

    #[test]
    fn generator_covers_every_kind_of_every_dialect() {
        let schema = schema_with_table();
        let mut rng = SmallRng::seed_from_u64(7);
        for d in Dialect::ALL {
            for kind in d.supported_kinds() {
                let stmt = gen_statement(kind, &schema, d, &mut rng);
                assert_eq!(stmt.kind(), kind, "generator produced wrong kind for {kind:?}");
            }
        }
    }

    #[test]
    fn generated_statements_render_and_reparse() {
        let schema = schema_with_table();
        let mut rng = SmallRng::seed_from_u64(11);
        for d in Dialect::ALL {
            for kind in d.supported_kinds() {
                for _ in 0..3 {
                    let stmt = gen_statement(kind, &schema, d, &mut rng);
                    let sql = format!("{stmt};");
                    let parsed = lego_sqlparser::parse_script(&sql)
                        .unwrap_or_else(|e| panic!("unparseable generated SQL {sql:?}: {e}"));
                    assert_eq!(parsed.statements[0].kind(), kind, "{sql}");
                }
            }
        }
    }

    #[test]
    fn schema_model_tracks_ddl() {
        let mut m = SchemaModel::new();
        let stmts = lego_sqlparser::parse_script(
            "CREATE TABLE a (x INT);\n\
             ALTER TABLE a ADD COLUMN y TEXT;\n\
             ALTER TABLE a RENAME TO b;\n\
             CREATE TABLE c (z INT);\n\
             DROP TABLE c;",
        )
        .unwrap();
        for s in &stmts.statements {
            m.observe(s);
        }
        assert!(m.has_table("b"));
        assert!(!m.has_table("a"));
        assert!(!m.has_table("c"));
        assert_eq!(m.table("b").unwrap().columns.len(), 2);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let schema = schema_with_table();
        let kind = StmtKind::Other(StandaloneKind::Select);
        let a = gen_statement(kind, &schema, Dialect::Postgres, &mut SmallRng::seed_from_u64(3));
        let b = gen_statement(kind, &schema, Dialect::Postgres, &mut SmallRng::seed_from_u64(3));
        assert_eq!(a, b);
    }
}
