//! Type-affinity analysis — Algorithm 2 of the paper.
//!
//! A *type-affinity* `(t1, t2)` is a chronological relation between the
//! types of two adjacent statements: `t1` can meaningfully be followed by
//! `t2`. The map is learned only from test cases that covered new branches,
//! which is what keeps it meaningful (§ III-A).
//!
//! The statement-type alphabet is small and closed ([`StmtKind::COUNT`]
//! codes, contiguous in `0..COUNT`), so the map is a dense K×K adjacency
//! bitset rather than the original `BTreeMap<StmtKind, BTreeSet<StmtKind>>`:
//! `insert`/`contains` are one word index + mask instead of two tree walks,
//! and `analyze` on the feedback hot path allocates nothing when a case
//! contributes no new pairs. Iteration walks rows in code order and set
//! bits in ascending code order, which is exactly the old BTree order
//! (derived `Ord` on [`StmtKind`] matches [`StmtKind::code`] order), so
//! checkpoints and synthesis schedules are byte-identical.

use lego_sqlast::{StmtKind, TestCase};
use std::borrow::Borrow;

const K: usize = StmtKind::COUNT;
const ROW_WORDS: usize = K.div_ceil(64);

/// `T: type -> set of types that may follow it` (the paper's `Map<type,
/// Set<type>>`), plus bookkeeping for progressive synthesis.
#[derive(Clone, Debug)]
pub struct AffinityMap {
    /// K rows of `ROW_WORDS` words each; bit `t2` of row `t1` set means the
    /// affinity `(t1, t2)` is known.
    rows: Box<[u64]>,
    len: usize,
}

impl Default for AffinityMap {
    fn default() -> Self {
        Self::new()
    }
}

impl AffinityMap {
    pub fn new() -> Self {
        Self { rows: vec![0u64; K * ROW_WORDS].into_boxed_slice(), len: 0 }
    }

    #[inline]
    fn slot(t1: StmtKind, t2: StmtKind) -> (usize, u64) {
        let c2 = t2.code() as usize;
        (t1.code() as usize * ROW_WORDS + c2 / 64, 1u64 << (c2 % 64))
    }

    /// Record one affinity; returns `true` if it is new.
    #[inline]
    pub fn insert(&mut self, t1: StmtKind, t2: StmtKind) -> bool {
        let (w, bit) = Self::slot(t1, t2);
        let added = self.rows[w] & bit == 0;
        self.rows[w] |= bit;
        self.len += added as usize;
        added
    }

    #[inline]
    pub fn contains(&self, t1: StmtKind, t2: StmtKind) -> bool {
        let (w, bit) = Self::slot(t1, t2);
        self.rows[w] & bit != 0
    }

    /// Successors of a type (drives `listSeq` in Algorithm 3), in code
    /// order — the order the old `BTreeSet` yielded.
    pub fn successors(&self, t: StmtKind) -> impl Iterator<Item = StmtKind> + '_ {
        let base = t.code() as usize * ROW_WORDS;
        (0..ROW_WORDS).flat_map(move |wi| {
            let mut word = self.rows[base + wi];
            std::iter::from_fn(move || {
                if word == 0 {
                    return None;
                }
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                Some(StmtKind::from_code((wi * 64 + bit) as u16).expect("bit within alphabet"))
            })
        })
    }

    /// Total number of `(t1, t2)` pairs — the paper's Table II metric.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn iter(&self) -> impl Iterator<Item = (StmtKind, StmtKind)> + '_ {
        (0..K).flat_map(move |c1| {
            let t1 = StmtKind::from_code(c1 as u16).expect("row within alphabet");
            self.successors(t1).map(move |t2| (t1, t2))
        })
    }

    /// Algorithm 2: extract all affinities from a test case, adding them to
    /// the map. Returns the affinities that were *new*.
    pub fn analyze(&mut self, case: &TestCase) -> Vec<(StmtKind, StmtKind)> {
        let mut new = Vec::new();
        let mut last: Option<StmtKind> = None;
        for stmt in &case.statements {
            let current = stmt.kind();
            if let Some(prev) = last {
                // Same-type adjacency contributes nothing to abundance
                // (Algorithm 2, lines 5-7).
                if prev != current && self.insert(prev, current) {
                    new.push((prev, current));
                }
            }
            last = Some(current);
        }
        new
    }
}

/// Count affinities across a whole corpus into a fresh map (used to produce
/// the Table II numbers for each fuzzer's output corpus). Generic over the
/// case representation so both owned corpora and the pool's shared
/// `Arc<TestCase>` seeds can be counted without cloning.
pub fn corpus_affinities<C: Borrow<TestCase>>(corpus: &[C]) -> AffinityMap {
    let mut map = AffinityMap::new();
    for case in corpus {
        map.analyze(case.borrow());
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use lego_sqlparser::parse_script;
    use std::collections::{BTreeMap, BTreeSet};

    fn case(sql: &str) -> TestCase {
        parse_script(sql).unwrap()
    }

    #[test]
    fn figure_5_substitution_affinities() {
        // CREATE TABLE -> INSERT -> INSERT -> DELETE -> SELECT yields
        // (CREATE TABLE, INSERT), (INSERT, DELETE), (DELETE, SELECT) — the
        // repeated INSERT contributes nothing.
        let mut m = AffinityMap::new();
        let new = m.analyze(&case(
            "CREATE TABLE t1 (v1 INT);\n\
             INSERT INTO t1 VALUES (1);\n\
             INSERT INTO t1 VALUES (2);\n\
             DELETE FROM t1 WHERE v1 = 1;\n\
             SELECT * FROM t1;",
        ));
        assert_eq!(new.len(), 3);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn repeated_types_are_skipped() {
        let mut m = AffinityMap::new();
        m.analyze(&case("INSERT INTO t VALUES (1); INSERT INTO t VALUES (2);"));
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn reanalysis_reports_only_new_pairs() {
        let mut m = AffinityMap::new();
        let sql = "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;";
        assert_eq!(m.analyze(&case(sql)).len(), 2);
        assert_eq!(m.analyze(&case(sql)).len(), 0);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn successors_reflect_insertions() {
        let mut m = AffinityMap::new();
        m.analyze(&case("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;"));
        let create = case("CREATE TABLE x (a INT);").statements[0].kind();
        let succ: Vec<_> = m.successors(create).collect();
        assert_eq!(succ.len(), 1);
    }

    #[test]
    fn corpus_affinities_accumulate_across_cases() {
        let corpus = vec![
            case("CREATE TABLE t (a INT); INSERT INTO t VALUES (1);"),
            case("INSERT INTO t VALUES (1); SELECT * FROM t;"),
        ];
        let m = corpus_affinities(&corpus);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn corpus_affinities_accept_shared_cases() {
        let corpus = vec![
            std::sync::Arc::new(case("CREATE TABLE t (a INT); INSERT INTO t VALUES (1);")),
            std::sync::Arc::new(case("INSERT INTO t VALUES (1); SELECT * FROM t;")),
        ];
        assert_eq!(corpus_affinities(&corpus).len(), 2);
    }

    #[test]
    fn ordered_pairs_are_directional() {
        let mut m = AffinityMap::new();
        m.analyze(&case("INSERT INTO t VALUES (1); SELECT * FROM t;"));
        let ins = case("INSERT INTO t VALUES (1);").statements[0].kind();
        let sel = case("SELECT 1;").statements[0].kind();
        assert!(m.contains(ins, sel));
        assert!(!m.contains(sel, ins));
    }

    #[test]
    fn iteration_order_matches_btree_reference() {
        // The dense map must iterate in exactly the order the original
        // BTreeMap<StmtKind, BTreeSet<StmtKind>> did — checkpoints and
        // synthesis schedules depend on it.
        let mut dense = AffinityMap::new();
        let mut tree: BTreeMap<StmtKind, BTreeSet<StmtKind>> = BTreeMap::new();
        let all = StmtKind::all();
        let mut x = 12345u64;
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let t1 = all[(x >> 33) as usize % all.len()];
            let t2 = all[(x >> 13) as usize % all.len()];
            if t1 == t2 {
                continue;
            }
            dense.insert(t1, t2);
            tree.entry(t1).or_default().insert(t2);
        }
        let want: Vec<(StmtKind, StmtKind)> =
            tree.iter().flat_map(|(t1, s)| s.iter().map(move |t2| (*t1, *t2))).collect();
        let got: Vec<(StmtKind, StmtKind)> = dense.iter().collect();
        assert_eq!(got, want);
        assert_eq!(dense.len(), want.len());
        for (t1, _) in &want {
            let ds: Vec<_> = dense.successors(*t1).collect();
            let ts: Vec<_> = tree[t1].iter().copied().collect();
            assert_eq!(ds, ts);
        }
    }
}
