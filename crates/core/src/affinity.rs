//! Type-affinity analysis — Algorithm 2 of the paper.
//!
//! A *type-affinity* `(t1, t2)` is a chronological relation between the
//! types of two adjacent statements: `t1` can meaningfully be followed by
//! `t2`. The map is learned only from test cases that covered new branches,
//! which is what keeps it meaningful (§ III-A).

use lego_sqlast::{StmtKind, TestCase};
use std::collections::{BTreeMap, BTreeSet};

/// `T: type -> set of types that may follow it` (the paper's `Map<type,
/// Set<type>>`), plus bookkeeping for progressive synthesis.
#[derive(Clone, Debug, Default)]
pub struct AffinityMap {
    map: BTreeMap<StmtKind, BTreeSet<StmtKind>>,
    len: usize,
}

impl AffinityMap {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one affinity; returns `true` if it is new.
    pub fn insert(&mut self, t1: StmtKind, t2: StmtKind) -> bool {
        let added = self.map.entry(t1).or_default().insert(t2);
        if added {
            self.len += 1;
        }
        added
    }

    pub fn contains(&self, t1: StmtKind, t2: StmtKind) -> bool {
        self.map.get(&t1).is_some_and(|s| s.contains(&t2))
    }

    /// Successors of a type (drives `listSeq` in Algorithm 3).
    pub fn successors(&self, t: StmtKind) -> impl Iterator<Item = StmtKind> + '_ {
        self.map.get(&t).into_iter().flatten().copied()
    }

    /// Total number of `(t1, t2)` pairs — the paper's Table II metric.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn iter(&self) -> impl Iterator<Item = (StmtKind, StmtKind)> + '_ {
        self.map.iter().flat_map(|(t1, set)| set.iter().map(move |t2| (*t1, *t2)))
    }

    /// Algorithm 2: extract all affinities from a test case, adding them to
    /// the map. Returns the affinities that were *new*.
    pub fn analyze(&mut self, case: &TestCase) -> Vec<(StmtKind, StmtKind)> {
        let mut new = Vec::new();
        let mut last: Option<StmtKind> = None;
        for stmt in &case.statements {
            let current = stmt.kind();
            if let Some(prev) = last {
                // Same-type adjacency contributes nothing to abundance
                // (Algorithm 2, lines 5-7).
                if prev != current && self.insert(prev, current) {
                    new.push((prev, current));
                }
            }
            last = Some(current);
        }
        new
    }
}

/// Count affinities across a whole corpus into a fresh map (used to produce
/// the Table II numbers for each fuzzer's output corpus).
pub fn corpus_affinities(corpus: &[TestCase]) -> AffinityMap {
    let mut map = AffinityMap::new();
    for case in corpus {
        map.analyze(case);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use lego_sqlparser::parse_script;

    fn case(sql: &str) -> TestCase {
        parse_script(sql).unwrap()
    }

    #[test]
    fn figure_5_substitution_affinities() {
        // CREATE TABLE -> INSERT -> INSERT -> DELETE -> SELECT yields
        // (CREATE TABLE, INSERT), (INSERT, DELETE), (DELETE, SELECT) — the
        // repeated INSERT contributes nothing.
        let mut m = AffinityMap::new();
        let new = m.analyze(&case(
            "CREATE TABLE t1 (v1 INT);\n\
             INSERT INTO t1 VALUES (1);\n\
             INSERT INTO t1 VALUES (2);\n\
             DELETE FROM t1 WHERE v1 = 1;\n\
             SELECT * FROM t1;",
        ));
        assert_eq!(new.len(), 3);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn repeated_types_are_skipped() {
        let mut m = AffinityMap::new();
        m.analyze(&case("INSERT INTO t VALUES (1); INSERT INTO t VALUES (2);"));
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn reanalysis_reports_only_new_pairs() {
        let mut m = AffinityMap::new();
        let sql = "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;";
        assert_eq!(m.analyze(&case(sql)).len(), 2);
        assert_eq!(m.analyze(&case(sql)).len(), 0);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn successors_reflect_insertions() {
        let mut m = AffinityMap::new();
        m.analyze(&case("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;"));
        let create = case("CREATE TABLE x (a INT);").statements[0].kind();
        let succ: Vec<_> = m.successors(create).collect();
        assert_eq!(succ.len(), 1);
    }

    #[test]
    fn corpus_affinities_accumulate_across_cases() {
        let corpus = vec![
            case("CREATE TABLE t (a INT); INSERT INTO t VALUES (1);"),
            case("INSERT INTO t VALUES (1); SELECT * FROM t;"),
        ];
        let m = corpus_affinities(&corpus);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn ordered_pairs_are_directional() {
        let mut m = AffinityMap::new();
        m.analyze(&case("INSERT INTO t VALUES (1); SELECT * FROM t;"));
        let ins = case("INSERT INTO t VALUES (1);").statements[0].kind();
        let sel = case("SELECT 1;").statements[0].kind();
        assert!(m.contains(ins, sel));
        assert!(!m.contains(sel, ins));
    }
}
