//! Corpus persistence: save retained seeds as `.sql` files and load a seed
//! directory back into a fuzzer (continuous-fuzzing workflows re-start from
//! the previous corpus, as the paper's two-week campaigns do).

use lego_sqlast::TestCase;
use std::borrow::Borrow;
use std::io;
use std::path::Path;

/// Write every test case as `seed_NNNN.sql` under `dir` (created if needed).
///
/// Stale `seed_*.sql` files from a previous, larger save are removed first —
/// otherwise a shrunken corpus would silently resurrect old seeds on the
/// next [`load_corpus`]. Only the harness's own `seed_*.sql` naming pattern
/// is touched; any other `.sql` files a user dropped in the directory
/// survive.
pub fn save_corpus<C: Borrow<TestCase>>(dir: &Path, corpus: &[C]) -> io::Result<usize> {
    std::fs::create_dir_all(dir)?;
    for entry in std::fs::read_dir(dir)?.filter_map(Result::ok) {
        let path = entry.path();
        let stale = path.file_name().and_then(|n| n.to_str()).is_some_and(|name| {
            name.strip_prefix("seed_")
                .and_then(|rest| rest.strip_suffix(".sql"))
                .is_some_and(|mid| !mid.is_empty() && mid.bytes().all(|b| b.is_ascii_digit()))
        });
        if stale {
            std::fs::remove_file(&path)?;
        }
    }
    for (i, case) in corpus.iter().enumerate() {
        std::fs::write(dir.join(format!("seed_{i:04}.sql")), case.borrow().to_sql())?;
    }
    Ok(corpus.len())
}

/// Load every parseable `.sql` file under `dir`, in file-name order.
/// Unparseable files are skipped and reported in the second tuple element.
pub fn load_corpus(dir: &Path) -> io::Result<(Vec<TestCase>, Vec<String>)> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "sql"))
        .collect();
    entries.sort();
    let mut corpus = Vec::new();
    let mut skipped = Vec::new();
    for path in entries {
        let sql = std::fs::read_to_string(&path)?;
        match lego_sqlparser::parse_script(&sql) {
            Ok(case) if !case.is_empty() => corpus.push(case),
            _ => skipped.push(path.display().to_string()),
        }
    }
    Ok((corpus, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lego_sqlparser::parse_script;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("lego_corpus_io_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_corpus() {
        let dir = tmpdir("rt");
        let corpus = vec![
            parse_script("CREATE TABLE t (a INT); INSERT INTO t VALUES (1);").unwrap(),
            parse_script("SELECT 1;").unwrap(),
        ];
        assert_eq!(save_corpus(&dir, &corpus).unwrap(), 2);
        let (loaded, skipped) = load_corpus(&dir).unwrap();
        assert!(skipped.is_empty());
        assert_eq!(loaded, corpus);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shrinking_resave_removes_stale_seed_files() {
        let dir = tmpdir("shrink");
        let big = vec![
            parse_script("CREATE TABLE t (a INT);").unwrap(),
            parse_script("SELECT 1;").unwrap(),
            parse_script("SELECT 2;").unwrap(),
        ];
        assert_eq!(save_corpus(&dir, &big).unwrap(), 3);
        // A user-provided extra seed must survive the cleanup.
        std::fs::write(dir.join("extra.sql"), "SELECT 99;").unwrap();
        let small = vec![parse_script("SELECT 3;").unwrap()];
        assert_eq!(save_corpus(&dir, &small).unwrap(), 1);
        let (loaded, skipped) = load_corpus(&dir).unwrap();
        assert!(skipped.is_empty());
        // Exactly seed_0000.sql + extra.sql: the old seed_0001/0002 are gone.
        assert_eq!(loaded.len(), 2);
        assert!(!dir.join("seed_0001.sql").exists());
        assert!(!dir.join("seed_0002.sql").exists());
        assert!(dir.join("extra.sql").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unparseable_files_are_skipped_not_fatal() {
        let dir = tmpdir("skip");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("bad.sql"), "FROBNICATE;").unwrap();
        std::fs::write(dir.join("good.sql"), "SELECT 1;").unwrap();
        let (loaded, skipped) = load_corpus(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(skipped.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
