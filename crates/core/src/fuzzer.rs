//! The LEGO fuzzer — Figure 4 of the paper.
//!
//! Each iteration: (1) *proactive affinity analysis* — pick a seed, apply
//! sequence-oriented mutations (Algorithm 1: substitution, insertion,
//! deletion), analyze the affinities of mutants that covered new branches
//! (Algorithm 2); (2) *progressive sequence synthesis* — for every newly
//! discovered affinity, synthesize all new sequences containing it
//! (Algorithm 3) and instantiate them into executable test cases.
//! Conventional syntax-preserving mutations run alongside, as in the
//! implementation section (§ IV).

use crate::affinity::AffinityMap;
use crate::campaign::FuzzEngine;
use crate::gen::{gen_statement, SchemaModel};
use crate::instantiate::{fix_case, instantiate, AstLibrary};
use crate::mutation::{conventional_mutate_stacked, sema_repair};
use crate::ngram::{gram2_at, gram3_at, pack2, pack3, seq_len, unpack_seq, NgramSet};
use crate::pool::SeedPool;
use crate::seeds::initial_corpus;
use crate::synthesis::{plausible_key, SequenceStore};
use lego_dbms::ExecReport;
use lego_observe::{Event, MutOp, Telemetry};
use lego_sqlast::{Dialect, StmtKind, TestCase};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::Arc;

/// Engine-snapshot format version. v4 adds the `sema` config knob (static
/// sequence analysis); v3 adds the `rule_cov` config knob and the
/// `rule_boosted` stats counter; v2 packs `executed_ngrams` as sorted `u64`
/// keys (see [`crate::ngram`]); v1 stored arrays of kind-code arrays.
/// Restore accepts all four (older snapshots imply the missing knobs are
/// `false`).
pub const ENGINE_SNAPSHOT_VERSION: u64 = 4;

/// Tuning knobs. Defaults follow the paper where it gives numbers
/// (`LEN = 5`; the length-ablation experiment uses 3/5/8).
#[derive(Clone, Debug, serde::Serialize)]
pub struct Config {
    /// Maximum synthesized sequence length (the paper's `LEN`).
    pub max_seq_len: usize,
    /// How many test cases to instantiate per synthesized sequence.
    pub instantiations_per_seq: usize,
    /// Cap on sequences synthesized per new affinity (engineering guard).
    pub synth_limit_per_affinity: usize,
    /// Conventional mutants generated per scheduled seed.
    pub conventional_per_seed: usize,
    /// Max stacked within-statement mutations per conventional mutant.
    pub mutation_stack: usize,
    /// Algorithm 1 (sequence-oriented mutation: substitution / insertion /
    /// deletion). LEGO and LEGO- have it; SQUIRREL-style engines do not.
    pub seq_mutation: bool,
    /// Algorithms 2+3 (affinity analysis + progressive synthesis); `false`
    /// gives the paper's LEGO- ablation.
    pub sequence_oriented: bool,
    /// Hard cap on test-case length for insertion mutants — the paper's
    /// length limit (§ VI: unbounded seeds "may degrade the performance of
    /// fuzzer or even cause fuzzer to be stuck", cf. the 945-statement seed
    /// that hung SQUIRREL for 23 minutes).
    pub max_case_len: usize,
    /// § VI future work: "to detect bugs triggered by long sequences, we
    /// plan to split long sequences into several equivalent short
    /// sequences." When a retained seed exceeds `max_case_len`, keep two
    /// overlapping halves as additional seeds.
    pub split_long_seeds: bool,
    /// § VI future work: "importing the model of non-adjacent combinations
    /// between types" — also record gap-1 (one-apart) type pairs as
    /// affinities during analysis.
    pub nonadjacent_affinities: bool,
    /// Pending-case queue bound; overflow is dropped and counted.
    pub queue_cap: usize,
    /// RNG seed for the whole campaign.
    pub rng_seed: u64,
    /// Grammar-rule coverage feedback: react to parser-rule novelty reported
    /// by the campaign loop (seed boosting + gap-pair affinity harvesting)
    /// and start from the dialect "special features" template pack. Kept
    /// LAST so that v2 snapshots differ from v3 only by this field's
    /// trailing JSON fragment (see `apply_snapshot`).
    pub rule_cov: bool,
    /// Static sequence analysis (`--sema`): dependency-aware mutation and
    /// splicing via the `lego-sqlsema` binder, plus kind-level plausibility
    /// filtering of synthesized drafts. The campaign layer additionally
    /// skips engine execution of statically-invalid cases and runs the
    /// analyzer-vs-engine conformance oracle. Kept LAST (after `rule_cov`)
    /// so pre-v4 snapshots differ only by this field's trailing JSON
    /// fragment (see `apply_snapshot`).
    pub sema: bool,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            max_seq_len: 5,
            instantiations_per_seq: 2,
            synth_limit_per_affinity: 48,
            conventional_per_seed: 6,
            mutation_stack: 1,
            seq_mutation: true,
            sequence_oriented: true,
            max_case_len: 10,
            split_long_seeds: true,
            nonadjacent_affinities: false,
            queue_cap: 20_000,
            rng_seed: 0x1e60,
            rule_cov: false,
            sema: false,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Origin {
    Seed,
    /// Algorithm 1 mutants, by operator (telemetry attributes coverage
    /// gains to the specific operator that produced the case).
    Substitution,
    Insertion,
    Deletion,
    Synthesized,
    Conventional,
}

impl Origin {
    fn op(self) -> MutOp {
        match self {
            Origin::Seed => MutOp::Seed,
            Origin::Substitution => MutOp::Substitution,
            Origin::Insertion => MutOp::Insertion,
            Origin::Deletion => MutOp::Deletion,
            Origin::Synthesized => MutOp::Synthesis,
            Origin::Conventional => MutOp::Conventional,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Origin::Seed => "seed",
            Origin::Substitution => "substitution",
            Origin::Insertion => "insertion",
            Origin::Deletion => "deletion",
            Origin::Synthesized => "synthesized",
            Origin::Conventional => "conventional",
        }
    }

    fn from_name(name: &str) -> Result<Self, String> {
        Ok(match name {
            "seed" => Origin::Seed,
            "substitution" => Origin::Substitution,
            "insertion" => Origin::Insertion,
            "deletion" => Origin::Deletion,
            "synthesized" => Origin::Synthesized,
            "conventional" => Origin::Conventional,
            other => return Err(format!("unknown case origin '{other}'")),
        })
    }
}

struct Pending {
    case: Arc<TestCase>,
    origin: Origin,
}

/// One synthesis-queue slot. Algorithm 3 used to instantiate every variant
/// of every synthesized sequence eagerly inside `feedback()`; profiling
/// showed ~6× more cases instantiated than the budget could ever execute,
/// with the surplus silently dropped at `queue_cap` — the single largest
/// feedback-stage cost. A `Job` defers instantiation to schedule time, so a
/// dropped or superseded sequence costs nothing and the novelty filter gets
/// a second look with the n-grams executed since enqueue.
///
/// Invariant: `Ready` entries (v1-checkpoint restores) form a strict queue
/// prefix — jobs are only ever appended, and a partially drained job stays
/// at the front. Checkpointing relies on this to serialize the two regions
/// as separate fields.
enum SynthEntry {
    Ready(Pending),
    Job { seq: Vec<StmtKind>, left: usize },
}

/// The LEGO fuzzing engine (and, with `sequence_oriented = false`, LEGO-).
pub struct LegoFuzzer {
    dialect: Dialect,
    cfg: Config,
    rng: SmallRng,
    pool: SeedPool,
    affinities: AffinityMap,
    store: SequenceStore,
    library: AstLibrary,
    /// Seed + mutation-derived cases.
    queue: VecDeque<Pending>,
    /// Synthesized (Algorithm 3) work, drained at a fixed share of the
    /// schedule so synthesis bursts cannot starve mutation. Holds deferred
    /// instantiation jobs (see [`SynthEntry`]), not materialized cases.
    synth_queue: VecDeque<SynthEntry>,
    /// Scheduling counter between the two queues.
    schedule_tick: usize,
    /// Kinds available for substitution/insertion.
    kinds: Vec<StmtKind>,
    /// Ordered type 2-grams and 3-grams already observed in executed cases
    /// (packed `u64` keys); synthesized sequences offering no new n-gram are
    /// not re-instantiated.
    executed_ngrams: NgramSet,
    pending_origin: Origin,
    /// Telemetry handle, attached by the campaign harness. Disabled by
    /// default; never consulted for any fuzzing decision.
    tel: Telemetry,
    pub stats: LegoStats,
}

/// Internal counters surfaced for the ablation tables.
#[derive(Clone, Debug, Default)]
pub struct LegoStats {
    pub affinities_found: usize,
    pub sequences_synthesized: usize,
    pub cases_instantiated: usize,
    /// Synthesized sequences skipped because every adjacent pair had already
    /// been executed (scheduling optimization, reported not silent).
    pub sequences_skipped_covered: usize,
    pub queue_dropped: usize,
    pub seq_mutants: usize,
    pub conventional_mutants: usize,
    /// Corpus entries whose admission was driven (at least in part) by
    /// grammar-rule novelty — each one also got a scheduling boost.
    pub rule_boosted: usize,
}

impl LegoFuzzer {
    pub fn new(dialect: Dialect, cfg: Config) -> Self {
        let starters: Vec<StmtKind> =
            dialect.supported_kinds().into_iter().filter(|k| k.is_sequence_starter()).collect();
        let mut fz = Self {
            dialect,
            rng: SmallRng::seed_from_u64(cfg.rng_seed),
            pool: SeedPool::new(),
            affinities: AffinityMap::new(),
            store: SequenceStore::new(cfg.max_seq_len, &starters),
            library: AstLibrary::new(),
            queue: VecDeque::new(),
            synth_queue: VecDeque::new(),
            schedule_tick: 0,
            kinds: dialect.supported_kinds(),
            executed_ngrams: NgramSet::new(),
            pending_origin: Origin::Seed,
            tel: Telemetry::disabled(),
            stats: LegoStats::default(),
            cfg,
        };
        for case in initial_corpus(dialect) {
            fz.queue.push_back(Pending { case: Arc::new(case), origin: Origin::Seed });
        }
        fz.push_special_pack();
        fz
    }

    /// Queue the dialect "special features" templates (rule-coverage mode
    /// only). They ride behind the mundane corpus so the baseline seeds
    /// still execute first.
    fn push_special_pack(&mut self) {
        if !self.cfg.rule_cov {
            return;
        }
        for case in crate::special::special_templates(self.dialect) {
            self.queue.push_back(Pending { case: Arc::new(case), origin: Origin::Seed });
        }
    }

    /// Convenience constructor for the LEGO- ablation (§ V-D).
    pub fn lego_minus(dialect: Dialect, mut cfg: Config) -> Self {
        cfg.sequence_oriented = false;
        Self::new(dialect, cfg)
    }

    /// Start from a caller-supplied seed corpus instead of the built-in one
    /// (e.g. a corpus reloaded via [`crate::corpus_io::load_corpus`]).
    pub fn with_corpus(dialect: Dialect, cfg: Config, corpus: Vec<TestCase>) -> Self {
        let mut fz = Self::new(dialect, cfg);
        fz.queue.clear();
        for case in corpus {
            fz.queue.push_back(Pending { case: Arc::new(case), origin: Origin::Seed });
        }
        fz.push_special_pack();
        fz
    }

    pub fn affinity_count(&self) -> usize {
        self.affinities.len()
    }

    fn push(&mut self, case: TestCase, origin: Origin) {
        debug_assert_ne!(origin, Origin::Synthesized, "synthesis enqueues jobs, not cases");
        if self.queue.len() >= self.cfg.queue_cap {
            self.stats.queue_dropped += 1;
            return;
        }
        self.queue.push_back(Pending { case: Arc::new(case), origin });
    }

    fn random_kind(&mut self, not: Option<StmtKind>) -> StmtKind {
        loop {
            // Proactive exploration: when the affinity machinery is on, half
            // of the draws steer toward statement types whose affinities are
            // still unexplored (fewest known successors), so the type space
            // is swept systematically rather than by uniform luck.
            let k = if self.cfg.sequence_oriented && self.rng.gen_bool(0.5) {
                let mut best = self.kinds[self.rng.gen_range(0..self.kinds.len())];
                let mut best_deg = self.affinities.successors(best).count();
                for _ in 0..3 {
                    let cand = self.kinds[self.rng.gen_range(0..self.kinds.len())];
                    let deg = self.affinities.successors(cand).count();
                    if deg < best_deg {
                        best = cand;
                        best_deg = deg;
                    }
                }
                best
            } else {
                self.kinds[self.rng.gen_range(0..self.kinds.len())]
            };
            if Some(k) != not {
                return k;
            }
        }
    }

    /// Algorithm 1 over one seed: for each statement, build the
    /// substitution / insertion / deletion mutants. (They are *executed*
    /// later by the campaign loop; affinity analysis happens in `feedback`
    /// for the ones that hit new branches.)
    fn sequence_mutants(&mut self, seed: &TestCase) -> Vec<(TestCase, Origin)> {
        let mut out = Vec::new();
        let n = seed.statements.len().min(12);
        // Under `--sema`, deletion consults the seed's def-use graph so a
        // removal that severs a live dependency edge gets its dangling
        // references repaired instead of shipping a provably-dead case.
        // Built once per seed; `None` off-path so the sema-less RNG stream
        // and mutant set stay byte-identical.
        let dep_graph = if self.cfg.sema {
            Some(lego_sqlsema::DepGraph::build(&seed.statements))
        } else {
            None
        };
        for i in 0..n {
            let schema = SchemaModel::of_statements(&seed.statements[..i]);
            // Substitution.
            {
                let current = seed.statements[i].kind();
                let kind = self.random_kind(Some(current));
                let stmt = gen_statement(kind, &schema, self.dialect, &mut self.rng);
                let mut q1 = seed.clone();
                q1.statements[i] = stmt;
                fix_case(&mut q1, &mut self.rng);
                if self.cfg.sema {
                    sema_repair(&mut q1, self.dialect);
                }
                out.push((q1, Origin::Substitution));
            }
            // Insertion after (unless the seed is already at the length
            // cap). Insertion *extends* sequences — composition — so it
            // belongs to the sequence-synthesis half of LEGO and is disabled
            // in the LEGO- ablation along with Algorithms 2-3; LEGO- keeps
            // substitution and deletion (type exploration over existing
            // sequence shapes).
            if self.cfg.sequence_oriented && seed.statements.len() < self.cfg.max_case_len {
                let kind = self.random_kind(None);
                let stmt = gen_statement(kind, &schema, self.dialect, &mut self.rng);
                let mut q2 = seed.clone();
                q2.statements.insert(i + 1, stmt);
                fix_case(&mut q2, &mut self.rng);
                if self.cfg.sema {
                    sema_repair(&mut q2, self.dialect);
                }
                out.push((q2, Origin::Insertion));
            }
            // Deletion.
            if seed.statements.len() > 1 {
                let mut q3 = seed.clone();
                q3.statements.remove(i);
                fix_case(&mut q3, &mut self.rng);
                if let Some(graph) = &dep_graph {
                    let order: Vec<usize> =
                        (0..seed.statements.len()).filter(|&j| j != i).collect();
                    if !graph.order_satisfied(&order) {
                        sema_repair(&mut q3, self.dialect);
                    }
                }
                out.push((q3, Origin::Deletion));
            }
        }
        self.stats.seq_mutants += out.len();
        out
    }

    /// Schedule one fuzzing iteration's worth of pending cases.
    fn schedule_iteration(&mut self) {
        let seed_case = match self.pool.pick(&mut self.rng) {
            // An `Arc` bump: scheduling a retained seed no longer deep-clones
            // its AST.
            Some(s) => Arc::clone(&s.case),
            None => {
                // Pool still empty (feedback not yet processed): re-inject a
                // built-in seed.
                Arc::new(initial_corpus(self.dialect)[0].clone())
            }
        };
        if self.cfg.seq_mutation {
            for (mutant, origin) in self.sequence_mutants(&seed_case) {
                self.tel.emit(|| Event::MutationApplied { op: origin.op() });
                self.push(mutant, origin);
            }
        }
        for _ in 0..self.cfg.conventional_per_seed {
            let mutant =
                conventional_mutate_stacked(&seed_case, &mut self.rng, self.cfg.mutation_stack);
            self.stats.conventional_mutants += 1;
            self.tel.emit(|| Event::MutationApplied { op: MutOp::Conventional });
            self.push(mutant, Origin::Conventional);
        }
    }

    /// Progressive synthesis for freshly discovered affinities. Enqueues
    /// deferred instantiation jobs; the AST work happens in [`Self::pop_synth`]
    /// only for sequences the schedule actually reaches.
    fn synthesize_for(&mut self, new_affinities: &[(StmtKind, StmtKind)]) {
        for &(t1, t2) in new_affinities {
            let seqs = self.store.on_new_affinity(
                t1,
                t2,
                &self.affinities,
                self.cfg.synth_limit_per_affinity,
            );
            self.stats.sequences_synthesized += seqs.len();
            let n_seqs = seqs.len() as u64;
            let mut scheduled = 0u64;
            for key in seqs {
                // Kind-level plausibility gate (`--sema`): drafts containing
                // an unsupported or unconditionally-rejected statement type
                // can never execute, whatever the instantiation — skip them
                // before the n-gram probe so they neither queue nor count as
                // scheduled work.
                if self.cfg.sema && !plausible_key(key, self.dialect) {
                    continue;
                }
                // Queue only sequences that would execute at least one type
                // 2-gram or 3-gram never executed before; the rest re-cover
                // known interactions and are skipped to keep seeds cheap
                // (§ II C3). The probes read n-gram keys straight out of the
                // packed sequence — no decode on the skip path.
                let len = seq_len(key);
                let has_new_pair =
                    (0..len - 1).any(|i| !self.executed_ngrams.contains(gram2_at(key, i)));
                let has_new_ngram = has_new_pair
                    || (len >= 3
                        && (0..len - 2).any(|i| !self.executed_ngrams.contains(gram3_at(key, i))));
                if !has_new_ngram {
                    self.stats.sequences_skipped_covered += 1;
                    continue;
                }
                if self.synth_queue.len() >= self.cfg.queue_cap {
                    self.stats.queue_dropped += 1;
                    continue;
                }
                // New pairs justify multiple structural variations; new
                // triples over known pairs get one shot.
                let left = if has_new_pair { self.cfg.instantiations_per_seq } else { 1 };
                scheduled += left as u64;
                self.synth_queue.push_back(SynthEntry::Job { seq: unpack_seq(key), left });
            }
            self.tel.emit(|| Event::SynthesisStep {
                t1: t1.name(),
                t2: t2.name(),
                sequences: n_seqs,
                instantiated: scheduled,
            });
        }
    }

    /// Pop the next synthesized case, instantiating the front job on demand.
    /// Sequences whose every n-gram got covered while they waited in the
    /// queue are discarded here without ever paying for AST generation.
    fn pop_synth(&mut self) -> Option<Pending> {
        loop {
            match self.synth_queue.front_mut()? {
                SynthEntry::Ready(_) => {
                    let Some(SynthEntry::Ready(p)) = self.synth_queue.pop_front() else {
                        unreachable!("front() was Ready");
                    };
                    return Some(p);
                }
                SynthEntry::Job { seq, left } => {
                    let still_new =
                        seq.windows(2).any(|w| !self.executed_ngrams.contains(pack2(w[0], w[1])))
                            || seq
                                .windows(3)
                                .any(|w| !self.executed_ngrams.contains(pack3(w[0], w[1], w[2])));
                    if !still_new {
                        self.stats.sequences_skipped_covered += 1;
                        self.synth_queue.pop_front();
                        continue;
                    }
                    let case = instantiate(seq, &self.library, self.dialect, &mut self.rng);
                    self.stats.cases_instantiated += 1;
                    *left -= 1;
                    if *left == 0 {
                        self.synth_queue.pop_front();
                    }
                    return Some(Pending { case: Arc::new(case), origin: Origin::Synthesized });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Checkpoint/resume: the engine half of `crate::checkpoint`
// ---------------------------------------------------------------------------

/// One retained seed, as persisted.
#[derive(serde::Serialize)]
struct SeedCk {
    sql: String,
    cost: usize,
    scheduled: usize,
}

/// One queued pending case, as persisted.
#[derive(serde::Serialize)]
struct PendingCk {
    sql: String,
    origin: String,
}

/// One AST-library bucket, as persisted (kind code + statement scripts).
#[derive(serde::Serialize)]
struct BucketCk {
    kind: u16,
    stmts: Vec<String>,
}

/// One deferred synthesis job, as persisted (kind codes + variants left).
#[derive(serde::Serialize)]
struct JobCk {
    seq: Vec<u16>,
    left: usize,
}

/// The complete serialized state of a [`LegoFuzzer`]. Test cases and
/// statements round-trip through SQL text (`to_sql` → `parse_script`), RNG
/// state through the reseed barrier, and `StmtKind`s through their stable
/// codes. Every collection is emitted in a deterministic order, so two
/// engines with equal state produce byte-identical snapshots.
#[derive(serde::Serialize)]
struct FuzzerSnapshot {
    /// [`ENGINE_SNAPSHOT_VERSION`]. Absent in v1 snapshots.
    version: u64,
    name: String,
    /// The engine `Config` as JSON; restore compares it verbatim against the
    /// receiving engine's config, catching any seed/knob mismatch.
    cfg: String,
    rng_reseed: u64,
    schedule_tick: usize,
    pending_origin: String,
    pool: Vec<SeedCk>,
    affinities: Vec<(u16, u16)>,
    seqs: Vec<Vec<u16>>,
    store_truncated: usize,
    library: Vec<BucketCk>,
    library_keys: Vec<u64>,
    queue: Vec<PendingCk>,
    /// Materialized synthesized cases — the queue's `Ready` prefix (only
    /// present after restoring a v1 snapshot, which stored cases eagerly).
    synth_queue: Vec<PendingCk>,
    /// Deferred instantiation jobs — the rest of the synthesis queue (v2).
    synth_jobs: Vec<JobCk>,
    /// Packed n-gram keys in ascending order (v2; see [`crate::ngram`]).
    executed_ngrams: Vec<u64>,
    /// `LegoStats` counters in declaration order.
    stats: Vec<usize>,
}

fn stmt_to_sql(stmt: &lego_sqlast::ast::Statement) -> String {
    TestCase::new(vec![stmt.clone()]).to_sql()
}

fn parse_case(sql: &str) -> Result<TestCase, String> {
    lego_sqlparser::parse_script(sql).map_err(|e| format!("checkpointed case re-parse: {e:?}"))
}

fn parse_stmt(sql: &str) -> Result<lego_sqlast::ast::Statement, String> {
    let mut case = parse_case(sql)?;
    if case.statements.len() != 1 {
        return Err(format!("expected one statement, got {}", case.statements.len()));
    }
    Ok(case.statements.remove(0))
}

fn kind_from_code(code: u64) -> Result<StmtKind, String> {
    u16::try_from(code)
        .ok()
        .and_then(StmtKind::from_code)
        .ok_or_else(|| format!("unknown statement-kind code {code}"))
}

fn pending_out(q: &VecDeque<Pending>) -> Vec<PendingCk> {
    q.iter()
        .map(|p| PendingCk { sql: p.case.to_sql(), origin: p.origin.name().to_string() })
        .collect()
}

fn pending_in(v: &serde_json::Value, key: &str) -> Result<VecDeque<Pending>, String> {
    crate::checkpoint::get(v, key)?
        .as_array()
        .ok_or_else(|| format!("field '{key}' must be an array"))?
        .iter()
        .map(|p| {
            Ok(Pending {
                case: Arc::new(parse_case(&crate::checkpoint::get_string(p, "sql")?)?),
                origin: Origin::from_name(&crate::checkpoint::get_string(p, "origin")?)?,
            })
        })
        .collect()
}

/// Parse a JSON array of arrays of kind codes.
fn code_seqs_in(v: &serde_json::Value, key: &str) -> Result<Vec<Vec<StmtKind>>, String> {
    crate::checkpoint::get(v, key)?
        .as_array()
        .ok_or_else(|| format!("field '{key}' must be an array"))?
        .iter()
        .map(|seq| {
            seq.as_array()
                .ok_or("sequence must be an array")?
                .iter()
                .map(|c| kind_from_code(c.as_u64().ok_or("kind code must be an integer")?))
                .collect()
        })
        .collect()
}

impl LegoFuzzer {
    /// Build the serialized snapshot, performing the RNG reseed barrier.
    fn snapshot(&mut self) -> FuzzerSnapshot {
        let reseed: u64 = self.rng.gen();
        self.rng = SmallRng::seed_from_u64(reseed);
        FuzzerSnapshot {
            version: ENGINE_SNAPSHOT_VERSION,
            name: self.name().to_string(),
            cfg: serde_json::to_string(&self.cfg).expect("config serialize"),
            rng_reseed: reseed,
            schedule_tick: self.schedule_tick,
            pending_origin: self.pending_origin.name().to_string(),
            pool: self
                .pool
                .seeds()
                .map(|s| SeedCk { sql: s.case.to_sql(), cost: s.cost, scheduled: s.scheduled })
                .collect(),
            affinities: self.affinities.iter().map(|(a, b)| (a.code(), b.code())).collect(),
            seqs: self
                .store
                .sequences()
                .iter()
                .map(|s| s.iter().map(|k| k.code()).collect())
                .collect(),
            store_truncated: self.store.truncated,
            library: self
                .library
                .buckets_sorted()
                .into_iter()
                .map(|(k, stmts)| BucketCk {
                    kind: k.code(),
                    stmts: stmts.iter().map(stmt_to_sql).collect(),
                })
                .collect(),
            library_keys: self.library.keys_sorted(),
            queue: pending_out(&self.queue),
            synth_queue: self
                .synth_queue
                .iter()
                .filter_map(|e| match e {
                    SynthEntry::Ready(p) => Some(PendingCk {
                        sql: p.case.to_sql(),
                        origin: p.origin.name().to_string(),
                    }),
                    SynthEntry::Job { .. } => None,
                })
                .collect(),
            synth_jobs: self
                .synth_queue
                .iter()
                .filter_map(|e| match e {
                    SynthEntry::Ready(_) => None,
                    SynthEntry::Job { seq, left } => {
                        Some(JobCk { seq: seq.iter().map(|k| k.code()).collect(), left: *left })
                    }
                })
                .collect(),
            executed_ngrams: self.executed_ngrams.sorted_keys(),
            stats: vec![
                self.stats.affinities_found,
                self.stats.sequences_synthesized,
                self.stats.cases_instantiated,
                self.stats.sequences_skipped_covered,
                self.stats.queue_dropped,
                self.stats.seq_mutants,
                self.stats.conventional_mutants,
                self.stats.rule_boosted,
            ],
        }
    }

    /// Apply a parsed snapshot. `self` must have been constructed with the
    /// same dialect and config as the engine that produced it.
    fn apply_snapshot(&mut self, v: &serde_json::Value) -> Result<(), String> {
        use crate::checkpoint::{get, get_string, get_u64, get_usize};
        // Pre-versioned (v1) snapshots have no `version` field.
        let version = match v.get("version") {
            Some(val) => val.as_u64().ok_or("field 'version' must be an integer")?,
            None => 1,
        };
        if !(1..=ENGINE_SNAPSHOT_VERSION).contains(&version) {
            return Err(format!(
                "engine snapshot version {version} is newer than this build supports \
                 (max {ENGINE_SNAPSHOT_VERSION})"
            ));
        }
        let name = get_string(v, "name")?;
        if name != self.name() {
            return Err(format!(
                "snapshot is for engine '{name}', this engine is '{}'",
                self.name()
            ));
        }
        let cfg = get_string(v, "cfg")?;
        let own_cfg = serde_json::to_string(&self.cfg).expect("config serialize");
        // Trailing-field compatibility: `rule_cov` (v3) and `sema` (v4) are
        // declared in order at the END of `Config`, so each pre-vN snapshot
        // cfg is exactly the vN cfg minus the trailing `,"knob":…}`
        // fragments. A pre-vN snapshot matches iff this engine runs with the
        // missing knobs at their defaults (`false`).
        let mut cmp_cfg = own_cfg.clone();
        if version < 4 {
            cmp_cfg = cmp_cfg.replacen(",\"sema\":false}", "}", 1);
        }
        if version < 3 {
            cmp_cfg = cmp_cfg.replacen(",\"rule_cov\":false}", "}", 1);
        }
        if cfg != cmp_cfg {
            return Err(format!(
                "snapshot config does not match this engine's config:\n  snapshot: {cfg}\n  engine:   {own_cfg}"
            ));
        }
        self.rng = SmallRng::seed_from_u64(get_u64(v, "rng_reseed")?);
        self.schedule_tick = get_usize(v, "schedule_tick")?;
        self.pending_origin = Origin::from_name(&get_string(v, "pending_origin")?)?;
        let seeds = get(v, "pool")?
            .as_array()
            .ok_or("field 'pool' must be an array")?
            .iter()
            .map(|s| {
                Ok((
                    parse_case(&get_string(s, "sql")?)?,
                    get_usize(s, "cost")?,
                    get_usize(s, "scheduled")?,
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        self.pool = SeedPool::from_parts(seeds);
        self.affinities = AffinityMap::new();
        for (a, b) in crate::checkpoint::pairs_u64_usize(get(v, "affinities")?)? {
            self.affinities.insert(kind_from_code(a)?, kind_from_code(b as u64)?);
        }
        self.store = SequenceStore::from_parts(
            self.cfg.max_seq_len,
            code_seqs_in(v, "seqs")?,
            get_usize(v, "store_truncated")?,
        );
        let buckets = get(v, "library")?
            .as_array()
            .ok_or("field 'library' must be an array")?
            .iter()
            .map(|b| {
                let kind = kind_from_code(get_u64(b, "kind")?)?;
                let stmts = get(b, "stmts")?
                    .as_array()
                    .ok_or("field 'stmts' must be an array")?
                    .iter()
                    .map(|s| parse_stmt(s.as_str().ok_or("statement must be a string")?))
                    .collect::<Result<Vec<_>, String>>()?;
                Ok((kind, stmts))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let keys = get(v, "library_keys")?
            .as_array()
            .ok_or("field 'library_keys' must be an array")?
            .iter()
            .map(|k| k.as_u64().ok_or_else(|| "library key must be a u64".to_string()))
            .collect::<Result<Vec<_>, String>>()?;
        self.library = AstLibrary::from_parts(buckets, keys);
        self.queue = pending_in(v, "queue")?;
        // The synthesis queue's materialized prefix (everything, for a v1
        // snapshot, whose engine instantiated eagerly)…
        self.synth_queue =
            pending_in(v, "synth_queue")?.into_iter().map(SynthEntry::Ready).collect();
        // …followed by the deferred jobs (v2 only).
        if version >= 2 {
            for job in
                get(v, "synth_jobs")?.as_array().ok_or("field 'synth_jobs' must be an array")?
            {
                let seq = get(job, "seq")?
                    .as_array()
                    .ok_or("job field 'seq' must be an array")?
                    .iter()
                    .map(|c| kind_from_code(c.as_u64().ok_or("kind code must be an integer")?))
                    .collect::<Result<Vec<_>, String>>()?;
                let left = get_usize(job, "left")?;
                if seq.len() < 2 || left == 0 {
                    return Err("malformed synthesis job in snapshot".to_string());
                }
                self.synth_queue.push_back(SynthEntry::Job { seq, left });
            }
        }
        self.executed_ngrams = NgramSet::new();
        if version < 2 {
            // v1 stored each n-gram as an array of kind codes; migrate by
            // packing. Membership is preserved exactly — packing is
            // injective over the alphabet.
            for gram in code_seqs_in(v, "executed_ngrams")? {
                let key = match gram[..] {
                    [a, b] => pack2(a, b),
                    [a, b, c] => pack3(a, b, c),
                    _ => {
                        return Err(format!("v1 n-gram must have 2 or 3 codes, got {}", gram.len()))
                    }
                };
                self.executed_ngrams.insert(key);
            }
        } else {
            for key in get(v, "executed_ngrams")?
                .as_array()
                .ok_or("field 'executed_ngrams' must be an array")?
            {
                let key = key.as_u64().ok_or("packed n-gram key must be a u64")?;
                // Validate against the alphabet: every embedded code must
                // decode, and re-packing must reproduce the key (rejects
                // e.g. a hole in the middle lane).
                let kinds = crate::ngram::unpack(key)
                    .into_iter()
                    .map(|c| kind_from_code(c as u64))
                    .collect::<Result<Vec<_>, String>>()?;
                let repacked = match kinds[..] {
                    [a, b] => pack2(a, b),
                    [a, b, c] => pack3(a, b, c),
                    _ => return Err(format!("malformed packed n-gram key {key:#x}")),
                };
                if repacked != key {
                    return Err(format!("malformed packed n-gram key {key:#x}"));
                }
                self.executed_ngrams.insert(key);
            }
        }
        let stats = get(v, "stats")?.as_array().ok_or("field 'stats' must be an array")?;
        // Pre-v3 snapshots carry 7 counters (no `rule_boosted`, which is 0
        // by definition since those engines had no rule feedback).
        let expected = if version < 3 { 7 } else { 8 };
        if stats.len() != expected {
            return Err(format!("expected {expected} stats counters, got {}", stats.len()));
        }
        let counter = |i: usize| -> Result<usize, String> {
            stats[i].as_usize().ok_or_else(|| "stats counter must be an integer".to_string())
        };
        self.stats = LegoStats {
            affinities_found: counter(0)?,
            sequences_synthesized: counter(1)?,
            cases_instantiated: counter(2)?,
            sequences_skipped_covered: counter(3)?,
            queue_dropped: counter(4)?,
            seq_mutants: counter(5)?,
            conventional_mutants: counter(6)?,
            rule_boosted: if version < 3 { 0 } else { counter(7)? },
        };
        Ok(())
    }
}

impl FuzzEngine for LegoFuzzer {
    fn name(&self) -> &'static str {
        if self.cfg.sequence_oriented {
            "LEGO"
        } else {
            "LEGO-"
        }
    }

    fn checkpoint(&mut self) -> Option<String> {
        Some(serde_json::to_string(&self.snapshot()).expect("snapshot serialize"))
    }

    fn restore(&mut self, snapshot: &str) -> Result<(), String> {
        let v = serde_json::from_str(snapshot)
            .map_err(|e| format!("engine snapshot is not valid JSON: {e}"))?;
        self.apply_snapshot(&v)
    }

    fn next_case(&mut self) -> Arc<TestCase> {
        loop {
            self.schedule_tick = self.schedule_tick.wrapping_add(1);
            // One synthesized case per two mutation-derived cases.
            if self.schedule_tick.is_multiple_of(3) {
                if let Some(p) = self.pop_synth() {
                    self.pending_origin = p.origin;
                    return p.case;
                }
            }
            // Mutation arm: generate work on demand so synthesis bursts can
            // never take more than half the execution budget.
            if self.queue.is_empty() {
                self.schedule_iteration();
            }
            if let Some(p) = self.queue.pop_front() {
                self.pending_origin = p.origin;
                return p.case;
            }
        }
    }

    fn feedback(&mut self, case: &Arc<TestCase>, report: &ExecReport, new_coverage: bool) {
        if self.cfg.sequence_oriented {
            // Packed-key inserts: no per-window allocation, no byte hashing.
            let seq = case.type_sequence();
            for w in seq.windows(2) {
                self.executed_ngrams.insert(pack2(w[0], w[1]));
            }
            for w in seq.windows(3) {
                self.executed_ngrams.insert(pack3(w[0], w[1], w[2]));
            }
        }
        if !new_coverage {
            return;
        }
        // Attribute the coverage gain (edge delta stashed by the campaign
        // loop) to the operator that produced this case.
        self.tel.record_gain(self.pending_origin.op());
        // Retain the seed (an `Arc` bump, not an AST clone) and harvest its
        // AST structures.
        self.pool.add(Arc::clone(case), report.statements_executed.max(1));
        self.library.add_case(case);
        // § VI: over-long seeds are additionally kept as two overlapping
        // halves, so their subsequences stay cheap to mutate.
        if self.cfg.split_long_seeds && case.len() > self.cfg.max_case_len {
            let mid = case.len() / 2;
            let overlap = 2.min(mid);
            let first = TestCase::new(case.statements[..(mid + overlap)].to_vec());
            let mut second = TestCase::new(case.statements[(mid - overlap)..].to_vec());
            fix_case(&mut second, &mut self.rng);
            self.pool.add(Arc::new(first), mid + overlap);
            self.pool.add(Arc::new(second), case.len() - mid + overlap);
        }
        if self.cfg.sequence_oriented {
            // Algorithm 2 on the interesting case, then Algorithm 3 for the
            // new affinities it produced.
            let mut new_affs = self.affinities.analyze(case);
            if self.cfg.nonadjacent_affinities {
                // Future-work §VI model: types one statement apart are also
                // chronologically related.
                let seq = case.type_sequence();
                for w in seq.windows(3) {
                    if w[0] != w[2] && self.affinities.insert(w[0], w[2]) {
                        new_affs.push((w[0], w[2]));
                    }
                }
            }
            self.stats.affinities_found = self.affinities.len();
            if self.tel.enabled() {
                for &(t1, t2) in &new_affs {
                    self.tel.emit(|| Event::AffinityDiscovered { t1: t1.name(), t2: t2.name() });
                }
            }
            if !new_affs.is_empty() {
                self.synthesize_for(&new_affs);
            }
        }
        // Backlog gauge for live monitoring: pending cases + queued
        // synthesis jobs. Interesting cases are rare, so this stays off the
        // per-exec hot path.
        self.tel.set_queue_depth((self.queue.len() + self.synth_queue.len()) as u64);
    }

    fn rule_feedback(&mut self, case: &Arc<TestCase>, new_rule_edges: usize) {
        if !self.cfg.rule_cov || new_rule_edges == 0 {
            return;
        }
        // The campaign calls `feedback` (with `new_coverage = true`) before
        // this, so the case is the pool's newest seed: make it win more
        // best-of-two scheduling draws.
        self.stats.rule_boosted += 1;
        self.pool.boost_newest();
        if self.cfg.sequence_oriented {
            // Affinity bonus: a case that unlocked new grammar productions
            // earns the gap-1 pair treatment normally reserved for the
            // `nonadjacent_affinities` mode, feeding extra sequences to
            // Algorithm 3.
            let seq = case.type_sequence();
            let mut new_affs = Vec::new();
            for w in seq.windows(3) {
                if w[0] != w[2] && self.affinities.insert(w[0], w[2]) {
                    new_affs.push((w[0], w[2]));
                }
            }
            if !new_affs.is_empty() {
                self.stats.affinities_found = self.affinities.len();
                if self.tel.enabled() {
                    for &(t1, t2) in &new_affs {
                        self.tel
                            .emit(|| Event::AffinityDiscovered { t1: t1.name(), t2: t2.name() });
                    }
                }
                self.synthesize_for(&new_affs);
            }
        }
    }

    fn corpus(&self) -> Vec<Arc<TestCase>> {
        // `Arc` bumps over the retained seeds — the old implementation
        // deep-cloned every AST in the pool on each call.
        self.pool.cases().cloned().collect()
    }

    fn attach_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lego_produces_cases_immediately() {
        let mut fz = LegoFuzzer::new(Dialect::Postgres, Config::default());
        let case = fz.next_case();
        assert!(!case.is_empty());
    }

    #[test]
    fn feedback_with_new_coverage_grows_pool_and_affinities() {
        let mut fz = LegoFuzzer::new(Dialect::Postgres, Config::default());
        let case = fz.next_case();
        let mut db = lego_dbms::Dbms::new(Dialect::Postgres);
        let report = db.execute_case(&case);
        fz.feedback(&case, &report, true);
        assert_eq!(fz.corpus().len(), 1);
        assert!(fz.affinity_count() > 0);
    }

    #[test]
    fn lego_minus_never_analyzes_affinities() {
        let mut fz = LegoFuzzer::lego_minus(Dialect::Postgres, Config::default());
        assert_eq!(fz.name(), "LEGO-");
        let case = fz.next_case();
        let mut db = lego_dbms::Dbms::new(Dialect::Postgres);
        let report = db.execute_case(&case);
        fz.feedback(&case, &report, true);
        assert_eq!(fz.affinity_count(), 0);
        assert_eq!(fz.stats.sequences_synthesized, 0);
    }

    #[test]
    fn sequence_mutants_change_the_type_sequence() {
        let mut fz = LegoFuzzer::new(Dialect::Postgres, Config::default());
        let seed = initial_corpus(Dialect::Postgres)[0].clone();
        let mutants = fz.sequence_mutants(&seed);
        assert!(!mutants.is_empty());
        let changed =
            mutants.iter().filter(|(m, _)| m.type_sequence() != seed.type_sequence()).count();
        assert!(changed * 10 >= mutants.len() * 9, "{changed}/{}", mutants.len());
    }

    #[test]
    fn long_seeds_are_split_into_overlapping_halves() {
        let cfg = Config { max_case_len: 4, ..Config::default() };
        let mut fz = LegoFuzzer::new(Dialect::Postgres, cfg);
        let case = Arc::new(
            lego_sqlparser::parse_script(
                "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;              UPDATE t SET a = 2; DELETE FROM t; SELECT 1;",
            )
            .unwrap(),
        );
        let mut db = lego_dbms::Dbms::new(Dialect::Postgres);
        let report = db.execute_case(&case);
        fz.feedback(&case, &report, true);
        // Original + two halves.
        assert_eq!(fz.corpus().len(), 3);
        assert!(fz.corpus().iter().skip(1).all(|c| c.len() < case.len()));
    }

    #[test]
    fn nonadjacent_affinities_extension_records_gap_pairs() {
        let cfg = Config { nonadjacent_affinities: true, ..Config::default() };
        let mut fz = LegoFuzzer::new(Dialect::Postgres, cfg);
        let case = Arc::new(
            lego_sqlparser::parse_script(
                "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;",
            )
            .unwrap(),
        );
        let mut db = lego_dbms::Dbms::new(Dialect::Postgres);
        let report = db.execute_case(&case);
        fz.feedback(&case, &report, true);
        // Adjacent pairs (CT,INS), (INS,SEL) plus the gap pair (CT,SEL).
        assert_eq!(fz.affinity_count(), 3);
    }

    #[test]
    fn synthesis_is_triggered_by_new_affinities() {
        let mut fz = LegoFuzzer::new(Dialect::Postgres, Config::default());
        // Feed it an interesting case with a novel pair.
        let case = Arc::new(
            lego_sqlparser::parse_script(
                "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;",
            )
            .unwrap(),
        );
        let mut db = lego_dbms::Dbms::new(Dialect::Postgres);
        let report = db.execute_case(&case);
        fz.feedback(&case, &report, true);
        assert!(fz.stats.sequences_synthesized > 0);
        // The discovering case itself covered its own n-grams, so direct
        // re-instantiations are filtered; a second case with different pairs
        // unlocks *combination* sequences, which must be instantiated.
        let case2 = Arc::new(
            lego_sqlparser::parse_script(
                "CREATE TABLE u (b INT); SELECT * FROM u; INSERT INTO u VALUES (2); DELETE FROM u;",
            )
            .unwrap(),
        );
        let mut db2 = lego_dbms::Dbms::new(Dialect::Postgres);
        let report2 = db2.execute_case(&case2);
        fz.feedback(&case2, &report2, true);
        // Feedback only *queues* jobs — AST instantiation is deferred to
        // schedule time, so sequences the budget never reaches cost nothing.
        assert!(fz.synth_queue.iter().any(|e| matches!(e, SynthEntry::Job { .. })));
        assert_eq!(fz.stats.cases_instantiated, 0);
        for _ in 0..9 {
            let _ = fz.next_case();
        }
        assert!(fz.stats.cases_instantiated > 0);
    }

    /// Drive `fz` for `n` cases against a live engine with real coverage
    /// feedback, returning the SQL of every case scheduled.
    fn drive(
        fz: &mut LegoFuzzer,
        db: &mut lego_dbms::Dbms,
        global: &mut lego_coverage::GlobalCoverage,
        n: usize,
    ) -> Vec<String> {
        let mut sqls = Vec::with_capacity(n);
        for _ in 0..n {
            let case = fz.next_case();
            db.reset();
            let report = db.execute_case(&case);
            let new_coverage = global.merge(&report.coverage);
            fz.feedback(&case, &report, new_coverage);
            sqls.push(case.to_sql());
        }
        sqls
    }

    #[test]
    fn checkpoint_restore_resumes_identical_case_stream() {
        let cfg = Config::default();
        let mut db = lego_dbms::Dbms::new(Dialect::Postgres);
        let mut global = lego_coverage::GlobalCoverage::new();

        // Run a warm-up burst so the pool, affinity map, sequence store, AST
        // library, and both queues all carry non-trivial state.
        let mut fz = LegoFuzzer::new(Dialect::Postgres, cfg.clone());
        drive(&mut fz, &mut db, &mut global, 60);
        let snapshot = fz.checkpoint().expect("LEGO supports checkpointing");

        // Continue the original engine...
        let mut db_a = lego_dbms::Dbms::new(Dialect::Postgres);
        let mut global_a = lego_coverage::GlobalCoverage::from_sparse(&global.to_sparse());
        let ahead = drive(&mut fz, &mut db_a, &mut global_a, 30);

        // ...and a fresh engine restored from the snapshot, with a clone of
        // the coverage map as it stood at the checkpoint.
        let mut fresh = LegoFuzzer::new(Dialect::Postgres, cfg);
        fresh.restore(&snapshot).expect("restore");
        let mut db_b = lego_dbms::Dbms::new(Dialect::Postgres);
        let mut global_b = lego_coverage::GlobalCoverage::from_sparse(&global.to_sparse());
        let resumed = drive(&mut fresh, &mut db_b, &mut global_b, 30);

        assert_eq!(ahead, resumed, "resumed engine must replay the exact case stream");
    }

    #[test]
    fn checkpoint_is_idempotent_after_restore() {
        let mut db = lego_dbms::Dbms::new(Dialect::Postgres);
        let mut global = lego_coverage::GlobalCoverage::new();
        let mut fz = LegoFuzzer::new(Dialect::Postgres, Config::default());
        drive(&mut fz, &mut db, &mut global, 40);
        let snap_a = fz.checkpoint().unwrap();

        let mut twin = LegoFuzzer::new(Dialect::Postgres, Config::default());
        twin.restore(&snap_a).expect("restore");
        // Both engines now hold identical state *and* identically-reseeded
        // RNGs, so their next snapshots must agree byte-for-byte.
        let snap_b = twin.checkpoint().unwrap();
        let snap_c = fz.checkpoint().unwrap();
        assert_eq!(snap_b, snap_c);
    }

    #[test]
    fn restore_rejects_mismatched_config() {
        let mut fz = LegoFuzzer::new(Dialect::Postgres, Config::default());
        let snap = fz.checkpoint().unwrap();
        let other_cfg = Config { rng_seed: Config::default().rng_seed ^ 1, ..Config::default() };
        let mut other = LegoFuzzer::new(Dialect::Postgres, other_cfg);
        let err = other.restore(&snap).unwrap_err();
        assert!(err.contains("config"), "unexpected error: {err}");
    }
}
