//! Instantiation: turning SQL Type Sequences into executable test cases
//! (paper § III-B, the three-step AST synthesis / concatenation / validation
//! pipeline).

use crate::gen::{gen_literal, gen_literal_not_null, gen_statement, SchemaModel};
use lego_sqlast::ast::{Insert, InsertSource, Statement};
use lego_sqlast::expr::{DataType, Expr};
use lego_sqlast::skeleton::{rebind, structure_key};
use lego_sqlast::{Dialect, StmtKind, TestCase};
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::{HashMap, HashSet};

/// The global AST-structure library: type-matched statement skeletons
/// harvested from every retained seed ("LEGO parses each of its statements to
/// extract AST structures and saves them into the global library").
#[derive(Clone, Debug, Default)]
pub struct AstLibrary {
    by_kind: HashMap<StmtKind, Vec<Statement>>,
    keys: HashSet<u64>,
    per_kind_cap: usize,
}

impl AstLibrary {
    pub fn new() -> Self {
        Self { by_kind: HashMap::new(), keys: HashSet::new(), per_kind_cap: 32 }
    }

    /// Harvest the structures of a retained test case. Structural duplicates
    /// (same skeleton) are ignored so the library stays non-repetitive.
    pub fn add_case(&mut self, case: &TestCase) {
        for stmt in &case.statements {
            let key = structure_key(stmt);
            if !self.keys.insert(key) {
                continue;
            }
            let bucket = self.by_kind.entry(stmt.kind()).or_default();
            if bucket.len() < self.per_kind_cap {
                bucket.push(stmt.clone());
            }
        }
    }

    /// Rebuild a library from checkpointed buckets. The per-bucket statement
    /// order matters ([`AstLibrary::pick`] indexes into it with the RNG);
    /// `keys` must be the full structural-dedup set, which can be larger
    /// than the stored statements (keys of statements dropped by the
    /// per-kind cap are still remembered).
    pub fn from_parts(buckets: Vec<(StmtKind, Vec<Statement>)>, keys: Vec<u64>) -> Self {
        Self {
            by_kind: buckets.into_iter().collect(),
            keys: keys.into_iter().collect(),
            per_kind_cap: 32,
        }
    }

    /// Buckets sorted by kind code, for deterministic serialization.
    pub fn buckets_sorted(&self) -> Vec<(StmtKind, &[Statement])> {
        let mut v: Vec<(StmtKind, &[Statement])> =
            self.by_kind.iter().map(|(k, stmts)| (*k, stmts.as_slice())).collect();
        v.sort_by_key(|(k, _)| k.code());
        v
    }

    /// The structural-dedup key set, sorted (checkpoint serialization).
    pub fn keys_sorted(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.keys.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Pick a random type-matched structure.
    pub fn pick(&self, kind: StmtKind, rng: &mut SmallRng) -> Option<Statement> {
        self.by_kind.get(&kind).and_then(|v| {
            if v.is_empty() {
                None
            } else {
                Some(v[rng.gen_range(0..v.len())].clone())
            }
        })
    }

    pub fn kinds(&self) -> usize {
        self.by_kind.len()
    }

    pub fn structures(&self) -> usize {
        self.by_kind.values().map(Vec::len).sum()
    }
}

/// Semantic validation and data refill (paper: "the dependencies between
/// different data are analyzed, and the AST will be filled with concrete
/// values that satisfy all dependencies").
///
/// Walks the case front to back maintaining a [`SchemaModel`]:
/// * creation targets colliding with existing relations get fresh names,
/// * references to unknown tables are rebound to existing ones,
/// * column references are rebound to columns of the referenced tables,
/// * INSERT row widths are fixed up against the target table,
/// * literals are occasionally re-randomized (data refill).
pub fn fix_case(case: &mut TestCase, rng: &mut SmallRng) {
    let mut schema = SchemaModel::new();
    for stmt in &mut case.statements {
        fix_statement(stmt, &schema, rng);
        schema.observe(stmt);
    }
}

fn fix_statement(stmt: &mut Statement, schema: &SchemaModel, rng: &mut SmallRng) {
    // 1. Creation targets must not collide.
    match stmt {
        Statement::CreateTable(c) => {
            if schema.has_table(&c.name) {
                c.name = schema.fresh_table_name(rng);
            }
            // Self/FK references to unknown tables point back at an existing
            // table (or the table itself).
            let own = c.name.clone();
            for col in &mut c.columns {
                for con in &mut col.constraints {
                    if let lego_sqlast::ast::ColumnConstraint::References { table, .. } = con {
                        if !schema.has_table(table) {
                            *table = schema
                                .random_table(rng)
                                .map(|t| t.name.clone())
                                .unwrap_or_else(|| own.clone());
                        }
                    }
                }
            }
            return;
        }
        Statement::CreateTableAs { name, query } => {
            if schema.has_table(name) {
                *name = schema.fresh_table_name(rng);
            }
            let mut q = Statement::Select(lego_sqlast::ast::SelectStmt {
                query: query.clone(),
                variant: lego_sqlast::ast::SelectVariant::Plain,
            });
            fix_statement(&mut q, schema, rng);
            if let Statement::Select(s) = q {
                *query = s.query;
            }
            return;
        }
        Statement::CreateView(v) if schema.has_table(&v.name) => {
            v.name = schema.fresh_table_name(rng);
        }
        _ => {}
    }

    // 2. Rebind unknown table references.
    rebind(
        stmt,
        |t| {
            if !schema.has_table(t) {
                if let Some(existing) = schema.random_table(rng) {
                    *t = existing.name.clone();
                }
            }
        },
        |_c| {},
        |_l| {},
    );

    // 3. Rebind column references to columns of the tables now referenced.
    let tables = lego_sqlast::visit::table_names(stmt);
    let mut cols: Vec<(String, DataType)> = Vec::new();
    for t in &tables {
        if let Some(tm) = schema.table(t) {
            cols.extend(tm.columns.iter().cloned());
        }
    }
    if !cols.is_empty() {
        let known: HashSet<String> = cols.iter().map(|(n, _)| n.to_ascii_lowercase()).collect();
        rebind(
            stmt,
            |_t| {},
            |c| {
                if !known.contains(&c.to_ascii_lowercase()) && !c.starts_with('$') {
                    *c = cols[rng.gen_range(0..cols.len())].0.clone();
                }
            },
            |_l| {},
        );
    }

    // 3b. Self-joins without aliases make every bare column reference
    //     ambiguous; qualify them with the table name (qualified lookup
    //     resolves to the first join side).
    {
        let mut lower: Vec<String> = tables.iter().map(|t| t.to_ascii_lowercase()).collect();
        lower.sort();
        let dup = lower.windows(2).find(|w| w[0] == w[1]).map(|w| w[0].clone());
        if let Some(tm) = dup.and_then(|d| schema.table(&d)) {
            struct Qualify<'a> {
                table: &'a str,
                cols: HashSet<String>,
            }
            impl lego_sqlast::visit::MutVisitor for Qualify<'_> {
                fn column_ref(&mut self, c: &mut lego_sqlast::expr::ColumnRef) {
                    if c.table.is_none() && self.cols.contains(&c.column.to_ascii_lowercase()) {
                        c.table = Some(self.table.to_string());
                    }
                }
            }
            let cols = tm.columns.iter().map(|(n, _)| n.to_ascii_lowercase()).collect();
            let mut q = Qualify { table: &tm.name, cols };
            lego_sqlast::visit::walk_statement_mut(stmt, &mut q);
        }
    }

    // 4. Data refill: re-randomize a fraction of literals.
    rebind(
        stmt,
        |_t| {},
        |_c| {},
        |l| {
            if rng.gen_bool(0.3) {
                let ty = match l {
                    Expr::Integer(_) | Expr::Float(_) => DataType::Int,
                    Expr::Str(_) => DataType::Text,
                    Expr::Bool(_) => DataType::Bool,
                    _ => return,
                };
                *l = gen_literal(ty, rng);
            }
        },
    );

    // 5. INSERT shape fix-up: row width must match the target table, and
    //    NOT NULL columns without a default must receive non-NULL values.
    if let Statement::Insert(Insert {
        table, columns, source: InsertSource::Values(rows), ..
    }) = stmt
    {
        if let Some(tm) = schema.table(table) {
            if !columns.is_empty() {
                columns.retain(|c| tm.columns.iter().any(|(n, _)| n.eq_ignore_ascii_case(c)));
                // An explicit column list must still cover every required
                // column, or the implicit NULLs violate NOT NULL.
                if !columns.is_empty() {
                    for req in &tm.required {
                        if !columns.iter().any(|c| c.eq_ignore_ascii_case(req)) {
                            columns.push(req.clone());
                        }
                    }
                }
            }
            // Per-position metadata for the effective column list (explicit
            // or the full table): type, NOT NULL (reject explicit NULLs),
            // UNIQUE (reject duplicate literals across the VALUES rows).
            struct Slot {
                ty: DataType,
                not_null: bool,
                unique: bool,
            }
            let slot_of = |name: &str, ty: DataType| Slot {
                ty,
                not_null: tm.is_not_null(name),
                unique: tm.is_unique(name),
            };
            let slots: Vec<Slot> = if columns.is_empty() {
                tm.columns.iter().map(|(n, t)| slot_of(n, *t)).collect()
            } else {
                columns
                    .iter()
                    .map(|c| {
                        let ty = tm
                            .columns
                            .iter()
                            .find(|(n, _)| n.eq_ignore_ascii_case(c))
                            .map(|(_, t)| *t)
                            .unwrap_or(DataType::Int);
                        slot_of(c, ty)
                    })
                    .collect()
            };
            // A literal's identity under the column's storage coercion:
            // YEAR clamps into [1901, 2155], so distinct out-of-range
            // literals still collide on a UNIQUE YEAR column.
            fn stored_key(value: &Expr, ty: DataType) -> Expr {
                let as_int = match value {
                    Expr::Integer(v) => Some(*v),
                    Expr::Float(v) => Some(*v as i64),
                    _ => None,
                };
                match (ty, as_int) {
                    (DataType::Year, Some(0)) => Expr::Integer(0),
                    (DataType::Year, Some(v)) => Expr::Integer(v.clamp(1901, 2155)),
                    _ => value.clone(),
                }
            }
            fn fresh_unique(ty: DataType, rng: &mut SmallRng) -> Expr {
                match ty {
                    DataType::Year => Expr::Integer(rng.gen_range(1901i64..2156)),
                    DataType::Bool => Expr::Bool(rng.gen_bool(0.5)),
                    _ => gen_literal_not_null(ty, rng),
                }
            }
            let mut seen: Vec<Vec<Expr>> = slots.iter().map(|_| Vec::new()).collect();
            let mut kept = Vec::with_capacity(rows.len());
            for mut row in rows.drain(..) {
                while row.len() > slots.len() {
                    row.pop();
                }
                while row.len() < slots.len() {
                    let slot = &slots[row.len()];
                    row.push(if slot.not_null {
                        gen_literal_not_null(slot.ty, rng)
                    } else {
                        gen_literal(slot.ty, rng)
                    });
                }
                let mut row_ok = true;
                for (i, value) in row.iter_mut().enumerate() {
                    let slot = &slots[i];
                    if slot.not_null && matches!(value, Expr::Null) {
                        *value = gen_literal_not_null(slot.ty, rng);
                    }
                    if slot.unique {
                        // Re-roll repeats of an earlier row's stored value;
                        // bounded, since narrow types may not have enough
                        // distinct values — then the whole row is dropped.
                        let mut key = stored_key(value, slot.ty);
                        for _ in 0..4 {
                            if !seen[i].contains(&key) {
                                break;
                            }
                            *value = fresh_unique(slot.ty, rng);
                            key = stored_key(value, slot.ty);
                        }
                        if seen[i].contains(&key) {
                            row_ok = false;
                            break;
                        }
                        seen[i].push(key);
                    }
                }
                if row_ok || kept.is_empty() {
                    kept.push(row);
                }
            }
            *rows = kept;
        }
    }
}

/// Instantiate a SQL Type Sequence into an executable test case: pick a
/// type-matched structure from the library for each entry (falling back to
/// the generator), concatenate, and run the validation/refill pass.
pub fn instantiate(
    seq: &[StmtKind],
    lib: &AstLibrary,
    dialect: Dialect,
    rng: &mut SmallRng,
) -> TestCase {
    let mut statements = Vec::with_capacity(seq.len() + 1);
    let mut schema = SchemaModel::new();
    // Dependency analysis: almost every statement needs a relation to act
    // on; when the sequence itself creates none, prepend a CREATE TABLE so
    // the instantiated case is semantically valid (paper § III-B: "the
    // dependencies between statements are also analyzed and maintained").
    let creates_table = seq.iter().any(|k| {
        matches!(
            k,
            StmtKind::Ddl(lego_sqlast::kind::DdlVerb::Create, lego_sqlast::kind::ObjectKind::Table)
        )
    });
    if !creates_table {
        let ct = gen_statement(
            StmtKind::Ddl(lego_sqlast::kind::DdlVerb::Create, lego_sqlast::kind::ObjectKind::Table),
            &schema,
            dialect,
            rng,
        );
        schema.observe(&ct);
        statements.push(ct);
        // …and populate it, so data-dependent statements downstream are
        // exercised on real rows rather than empty relations.
        if !seq.contains(&StmtKind::Other(lego_sqlast::kind::StandaloneKind::Insert)) {
            let ins = gen_statement(
                StmtKind::Other(lego_sqlast::kind::StandaloneKind::Insert),
                &schema,
                dialect,
                rng,
            );
            statements.push(ins);
        }
    }
    for &kind in seq {
        let stmt = match lib.pick(kind, rng) {
            // "Because of the randomness in selecting structures, one SQL
            // Type Sequence will be instantiated multiple times."
            Some(s) if rng.gen_bool(0.8) => s,
            _ => gen_statement(kind, &schema, dialect, rng),
        };
        schema.observe(&stmt);
        statements.push(stmt);
    }
    let mut case = TestCase::new(statements);
    fix_case(&mut case, rng);
    case
}

#[cfg(test)]
mod tests {
    use super::*;
    use lego_sqlast::kind::{DdlVerb, ObjectKind, StandaloneKind};
    use lego_sqlparser::parse_script;
    use rand::SeedableRng;

    const CT: StmtKind = StmtKind::Ddl(DdlVerb::Create, ObjectKind::Table);
    const INS: StmtKind = StmtKind::Other(StandaloneKind::Insert);
    const SEL: StmtKind = StmtKind::Other(StandaloneKind::Select);

    #[test]
    fn library_dedups_structures() {
        let mut lib = AstLibrary::new();
        let case = parse_script("INSERT INTO a VALUES (1); INSERT INTO b VALUES (999);").unwrap();
        lib.add_case(&case);
        // Same skeleton -> one structure.
        assert_eq!(lib.structures(), 1);
        let case2 = parse_script("INSERT INTO a (x) VALUES (1);").unwrap();
        lib.add_case(&case2);
        assert_eq!(lib.structures(), 2);
    }

    #[test]
    fn instantiated_sequence_has_requested_types() {
        let lib = AstLibrary::new();
        let mut rng = SmallRng::seed_from_u64(5);
        let seq = [CT, INS, SEL];
        let case = instantiate(&seq, &lib, Dialect::Postgres, &mut rng);
        assert_eq!(case.type_sequence(), seq.to_vec());
    }

    #[test]
    fn instantiated_cases_execute_mostly_clean() {
        // The paper's instantiation example: PRAGMA -> CREATE TABLE ->
        // INSERT, where the INSERT initially references a missing table and
        // the validator repairs it.
        let lib = AstLibrary::new();
        let mut rng = SmallRng::seed_from_u64(5);
        let seq = [CT, INS, SEL];
        let mut clean = 0;
        for _ in 0..30 {
            let case = instantiate(&seq, &lib, Dialect::Postgres, &mut rng);
            let mut db = lego_dbms::Dbms::new(Dialect::Postgres);
            let r = db.execute_case(&case);
            if r.errors.is_empty() {
                clean += 1;
            }
        }
        // Validation should make the clear majority semantically valid.
        assert!(clean >= 20, "only {clean}/30 instantiations were clean");
    }

    #[test]
    fn fixer_repairs_unknown_references() {
        let mut case = parse_script(
            "CREATE TABLE v0 (x INT PRIMARY KEY, y INT);\n\
             INSERT INTO v2 (v1) VALUES (100);",
        )
        .unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        fix_case(&mut case, &mut rng);
        let sql = case.to_sql();
        assert!(sql.contains("INSERT INTO v0"), "{sql}");
        let mut db = lego_dbms::Dbms::new(Dialect::Postgres);
        let r = db.execute_case(&case);
        assert!(r.errors.is_empty(), "{:?}\n{}", r.errors, sql);
    }

    #[test]
    fn fixer_renames_colliding_creations() {
        let mut case = parse_script(
            "CREATE TABLE t (a INT);\n\
             CREATE TABLE t (b INT);",
        )
        .unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        fix_case(&mut case, &mut rng);
        let seq = lego_sqlast::visit::table_names(&case.statements[1]);
        assert_ne!(seq[0], "t");
    }

    #[test]
    fn fixer_pads_insert_rows() {
        let mut case = parse_script(
            "CREATE TABLE t (a INT, b INT, c INT);\n\
             INSERT INTO t VALUES (1);",
        )
        .unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        fix_case(&mut case, &mut rng);
        let mut db = lego_dbms::Dbms::new(Dialect::Postgres);
        let r = db.execute_case(&case);
        assert!(r.errors.is_empty(), "{:?}\n{}", r.errors, case.to_sql());
    }

    #[test]
    fn pick_returns_none_for_unknown_kind() {
        let lib = AstLibrary::new();
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(lib.pick(CT, &mut rng).is_none());
    }
}
