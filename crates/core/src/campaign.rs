//! The campaign harness: runs any fuzzing engine against a simulated DBMS
//! for a fixed execution budget, collecting the paper's evaluation metrics
//! (branch coverage over time, deduplicated bugs, corpus affinities).

use crate::affinity::corpus_affinities;
use lego_coverage::GlobalCoverage;
use lego_dbms::{CrashReport, Dbms, ExecReport};
use lego_sqlast::{Dialect, TestCase};
use serde::Serialize;
use std::collections::HashMap;

/// A fuzzing engine: produces test cases, receives coverage feedback.
///
/// The campaign loop owns execution (fresh DBMS instance per case, global
/// coverage accounting, crash dedup) so that every engine is measured under
/// identical conditions — the paper's "for a fair comparison … rerun the
/// input seeds to uniform the branch coverage".
pub trait FuzzEngine {
    fn name(&self) -> &'static str;
    /// The next test case to execute.
    fn next_case(&mut self) -> TestCase;
    /// Post-execution feedback. `new_coverage` is the AFL `has_new_bits`
    /// verdict against the campaign-global map.
    fn feedback(&mut self, case: &TestCase, report: &ExecReport, new_coverage: bool);
    /// The engine's retained corpus (for Table II affinity accounting).
    fn corpus(&self) -> Vec<TestCase>;
}

/// Execution budget, in *statement-execution units* — the stand-in for the
/// paper's 24-hour wall clock. Charging per statement (plus a fixed per-case
/// reset fee) preserves LEGO's real-world advantage: its synthesized test
/// cases are short and execute quickly, so it gets more executions per unit
/// of time (§ II C3).
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    pub units: usize,
    /// Number of points on the coverage-over-time curve.
    pub snapshots: usize,
}

/// Fixed per-test-case cost (process reset, parsing) in statement units.
pub const CASE_RESET_COST: usize = 2;

impl Budget {
    pub fn units(units: usize) -> Self {
        Self { units, snapshots: 25 }
    }

    /// Rough conversion helper for tests: budget sized for about `execs`
    /// average-size test cases.
    pub fn execs(execs: usize) -> Self {
        Self { units: execs * 10, snapshots: 25 }
    }
}

/// One deduplicated bug found during a campaign.
#[derive(Clone, Debug, Serialize)]
pub struct BugFinding {
    pub crash: CrashReport,
    /// Execution index at which the bug was first triggered.
    pub first_exec: usize,
    /// The triggering test case, as SQL.
    pub case_sql: String,
    /// Delta-debugged minimal reproducer (same crash stack), as SQL.
    pub reduced_sql: String,
}

/// Everything a campaign measured.
#[derive(Clone, Debug, Serialize)]
pub struct CampaignStats {
    pub fuzzer: String,
    pub dialect: Dialect,
    /// Test cases executed within the budget.
    pub execs: usize,
    /// Statement units consumed.
    pub units: usize,
    /// `(units, branches)` samples.
    pub coverage_curve: Vec<(usize, usize)>,
    /// Final branch (edge) coverage.
    pub branches: usize,
    /// Deduplicated bugs in discovery order.
    pub bugs: Vec<BugFinding>,
    /// Type-affinities contained in the engine's final corpus (Table II).
    pub corpus_affinities: usize,
    pub corpus_size: usize,
}

impl CampaignStats {
    pub fn bug_count(&self) -> usize {
        self.bugs.len()
    }
}

/// Run one engine against one DBMS for the budget.
pub fn run_campaign(engine: &mut dyn FuzzEngine, dialect: Dialect, budget: Budget) -> CampaignStats {
    let mut global = GlobalCoverage::new();
    let mut bugs: Vec<BugFinding> = Vec::new();
    let mut seen_stacks: HashMap<u64, usize> = HashMap::new();
    let mut curve = Vec::with_capacity(budget.snapshots + 1);
    let every = (budget.units / budget.snapshots.max(1)).max(1);

    let mut units = 0usize;
    let mut execs = 0usize;
    let mut next_snapshot = 0usize;
    while units < budget.units {
        let case = engine.next_case();
        let mut db = Dbms::new(dialect);
        let report = db.execute_case(&case);
        units += report.statements_executed + CASE_RESET_COST;
        let new_coverage = global.merge(&report.coverage);
        if let Some(crash) = report.crash() {
            let h = crash.stack_hash();
            if let std::collections::hash_map::Entry::Vacant(e) = seen_stacks.entry(h) {
                e.insert(execs);
                // Triage: minimize the reproducer right away (the reduction
                // executions are charged to the budget, like a real
                // campaign's triage time).
                let (reduced, spent) = crate::reduce::reduce_case(&case, dialect, crash);
                units += spent;
                bugs.push(BugFinding {
                    crash: crash.clone(),
                    first_exec: execs,
                    case_sql: case.to_sql(),
                    reduced_sql: reduced.to_sql(),
                });
            }
        }
        engine.feedback(&case, &report, new_coverage);
        execs += 1;
        if units >= next_snapshot {
            curve.push((units, global.edges_covered()));
            next_snapshot += every;
        }
    }
    curve.push((units, global.edges_covered()));

    let corpus = engine.corpus();
    CampaignStats {
        fuzzer: engine.name().to_string(),
        dialect,
        execs,
        units,
        coverage_curve: curve,
        branches: global.edges_covered(),
        corpus_affinities: corpus_affinities(&corpus).len(),
        corpus_size: corpus.len(),
        bugs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzzer::{Config, LegoFuzzer};

    #[test]
    fn campaign_runs_and_gains_coverage() {
        let mut fz = LegoFuzzer::new(Dialect::Postgres, Config::default());
        let stats = run_campaign(&mut fz, Dialect::Postgres, Budget::execs(300));
        assert!(stats.execs > 50);
        assert!(stats.branches > 50, "branches = {}", stats.branches);
        assert!(stats.corpus_size > 1);
        // Coverage curve is monotone.
        for w in stats.coverage_curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn lego_beats_lego_minus_on_coverage() {
        // The Table IV ablation shape, at a budget past the early-noise
        // regime (MariaDB shows the largest effect in the paper: +25%),
        // summed over two RNG seeds to damp single-run variance.
        let budget = Budget::units(300_000);
        let (mut br, mut br_minus, mut aff, mut aff_minus) = (0usize, 0usize, 0usize, 0usize);
        for seed in [0x1e60u64, 7] {
            let mut cfg = Config::default();
            cfg.rng_seed = seed;
            let mut lego = LegoFuzzer::new(Dialect::MariaDb, cfg.clone());
            let s1 = run_campaign(&mut lego, Dialect::MariaDb, budget);
            let mut minus = LegoFuzzer::lego_minus(Dialect::MariaDb, cfg);
            let s2 = run_campaign(&mut minus, Dialect::MariaDb, budget);
            br += s1.branches;
            br_minus += s2.branches;
            aff += s1.corpus_affinities;
            aff_minus += s2.corpus_affinities;
        }
        assert!(br > br_minus, "LEGO {br} vs LEGO- {br_minus} branches");
        // The corpus-affinity crossover happens later in the run than the
        // branch crossover (LEGO- front-loads raw executions); at this test
        // budget we only require LEGO to be at parity — the full-budget
        // advantage is measured by the table4_ablation experiment.
        assert!(
            aff * 100 >= aff_minus * 95,
            "LEGO {aff} vs LEGO- {aff_minus} affinities"
        );
    }

    #[test]
    fn bugs_are_deduplicated() {
        let mut fz = LegoFuzzer::new(Dialect::MariaDb, Config::default());
        let stats = run_campaign(&mut fz, Dialect::MariaDb, Budget::execs(4_000));
        let mut ids: Vec<u32> = stats.bugs.iter().map(|b| b.crash.bug_id).collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate bug reports");
    }

    #[test]
    fn stats_serialize_to_json() {
        let mut fz = LegoFuzzer::new(Dialect::Comdb2, Config::default());
        let stats = run_campaign(&mut fz, Dialect::Comdb2, Budget::execs(100));
        let json = serde_json::to_string(&stats).unwrap();
        assert!(json.contains("\"fuzzer\":\"LEGO\""));
    }
}
