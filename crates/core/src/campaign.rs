//! The campaign harness: runs any fuzzing engine against a simulated DBMS
//! for a fixed execution budget, collecting the paper's evaluation metrics
//! (branch coverage over time, deduplicated bugs, corpus affinities).

use crate::affinity::corpus_affinities;
use crate::checkpoint::{
    self, CheckpointCfg, CheckpointMeta, FindingCk, LogicFindingCk, SnapCk, WorkerCheckpoint,
    WorkerResume, CHECKPOINT_VERSION,
};
use lego_coverage::{CovMap, CovRecorder, CoverageSink, GlobalCoverage};
use lego_dbms::{CrashReport, Dbms, ExecReport, Outcome, PANIC_BUG_ID};
use lego_observe::{Event, Stage, StageProfile, Telemetry};
use lego_oracle::{
    reduce::{reduce_logic_bug, reduce_with},
    LogicBug, OracleConfig, OracleKind, OracleSuite,
};
use lego_sqlast::{Dialect, TestCase};
use lego_sqlsema::{Sema, SeqReport, Verdict};
use serde::Serialize;
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// A fuzzing engine: produces test cases, receives coverage feedback.
///
/// The campaign loop owns execution (fresh DBMS instance per case, global
/// coverage accounting, crash dedup) so that every engine is measured under
/// identical conditions — the paper's "for a fair comparison … rerun the
/// input seeds to uniform the branch coverage".
pub trait FuzzEngine {
    fn name(&self) -> &'static str;
    /// The next test case to execute. Cases are handed out as `Arc`s so the
    /// engine can retain an admitted case (and the campaign can stash it in
    /// findings) without deep-cloning the AST.
    fn next_case(&mut self) -> Arc<TestCase>;
    /// Post-execution feedback. `new_coverage` is the AFL `has_new_bits`
    /// verdict against the campaign-global map. Admitting `case` to the
    /// corpus is an `Arc` bump.
    fn feedback(&mut self, case: &Arc<TestCase>, report: &ExecReport, new_coverage: bool);
    /// Grammar-rule coverage feedback, called (after [`FuzzEngine::feedback`])
    /// only when the campaign runs with rule coverage enabled and this case
    /// traversed `new_rule_edges > 0` parser rule→rule edges never seen
    /// before. Default is a no-op so engines without a rule-novelty response
    /// need no changes.
    fn rule_feedback(&mut self, _case: &Arc<TestCase>, _new_rule_edges: usize) {}
    /// The engine's retained corpus (for Table II affinity accounting),
    /// shared — not cloned — out of the pool.
    fn corpus(&self) -> Vec<Arc<TestCase>>;
    /// Give the engine a telemetry handle for engine-internal events
    /// (mutations, affinity discoveries, synthesis steps). The default is a
    /// no-op so baseline engines need no changes; the campaign always calls
    /// this before the first `next_case`.
    fn attach_telemetry(&mut self, _tel: Telemetry) {}
    /// Serialize the engine's complete fuzzing state for a campaign
    /// checkpoint. This is a *reseed barrier*: implementations draw one
    /// value from their RNG, reseed themselves from it, and record it — so
    /// an uninterrupted run that calls `checkpoint()` at the same boundary
    /// has the identical RNG stream afterwards. Returns `None` if the
    /// engine does not support checkpointing (the default); the campaign
    /// then skips persistence but still calls this at every boundary.
    fn checkpoint(&mut self) -> Option<String> {
        None
    }
    /// Restore state from a [`FuzzEngine::checkpoint`] payload. The engine
    /// must have been constructed with the same configuration (dialect,
    /// seed, knobs) as the one that produced the payload.
    fn restore(&mut self, _snapshot: &str) -> Result<(), String> {
        Err(format!("engine '{}' does not support checkpoint/resume", self.name()))
    }
}

/// Execution budget, in *statement-execution units* — the stand-in for the
/// paper's 24-hour wall clock. Charging per statement (plus a fixed per-case
/// reset fee) preserves LEGO's real-world advantage: its synthesized test
/// cases are short and execute quickly, so it gets more executions per unit
/// of time (§ II C3).
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    pub units: usize,
    /// Number of points on the coverage-over-time curve.
    pub snapshots: usize,
}

/// Fixed per-test-case cost (process reset, parsing) in statement units.
pub const CASE_RESET_COST: usize = 2;

impl Budget {
    pub fn units(units: usize) -> Self {
        Self { units, snapshots: 25 }
    }

    /// Rough conversion helper for tests: budget sized for about `execs`
    /// average-size test cases.
    pub fn execs(execs: usize) -> Self {
        Self { units: execs * 10, snapshots: 25 }
    }
}

/// One deduplicated bug found during a campaign.
#[derive(Clone, Debug, Serialize)]
pub struct BugFinding {
    pub crash: CrashReport,
    /// Execution index at which the bug was first triggered.
    pub first_exec: usize,
    /// The triggering test case, as SQL.
    pub case_sql: String,
    /// Delta-debugged minimal reproducer (same crash stack), as SQL.
    pub reduced_sql: String,
}

/// One deduplicated wrong-result (logic) bug found by a correctness oracle.
#[derive(Clone, Debug, Serialize)]
pub struct LogicBugFinding {
    pub bug: LogicBug,
    /// Execution index of the corpus-accepted case that first tripped the
    /// oracle.
    pub first_exec: usize,
    /// The triggering test case, as SQL.
    pub case_sql: String,
    /// Delta-debugged minimal reproducer (same oracle fingerprint), as SQL.
    pub reduced_sql: String,
}

impl LogicBugFinding {
    pub fn fingerprint(&self) -> u64 {
        self.bug.fingerprint()
    }
}

/// Everything a campaign measured.
#[derive(Clone, Debug, Serialize)]
pub struct CampaignStats {
    pub fuzzer: String,
    pub dialect: Dialect,
    /// Test cases executed within the budget.
    pub execs: usize,
    /// Statement units consumed.
    pub units: usize,
    /// `(units, branches)` samples.
    pub coverage_curve: Vec<(usize, usize)>,
    /// Final branch (edge) coverage.
    pub branches: usize,
    /// Final grammar-rule (parser rule→rule edge) coverage; 0 unless the
    /// campaign ran with `--rule-cov`.
    pub rule_branches: usize,
    /// Deduplicated bugs in discovery order.
    pub bugs: Vec<BugFinding>,
    /// Deduplicated oracle-flagged wrong-result bugs in discovery order
    /// (empty unless the campaign ran with oracles enabled).
    pub logic_bugs: Vec<LogicBugFinding>,
    /// Oracle comparisons performed (TLP + NoREC + differential + recovery;
    /// 0 with oracles disabled).
    pub oracle_checks: usize,
    /// Deduplicated recovery-oracle durability findings — the subset of
    /// `logic_bugs` with `oracle == Recovery` (0 unless the campaign ran
    /// with `--oracles=recovery`).
    pub durability_bugs: usize,
    /// Statements the static analyzer proved invalid before execution
    /// (0 unless the campaign ran with `--sema`).
    pub sema_rejects: usize,
    /// Statements of statically-skipped cases — generated by the fuzzer but
    /// never attempted on the engine because the analyzer rejected their
    /// case (0 unless `--sema`).
    pub sema_skipped_stmts: usize,
    /// Deduplicated analyzer-vs-engine conformance divergences — the subset
    /// of `logic_bugs` with `oracle == Sema` (0 unless `--sema`).
    pub sema_divergences: usize,
    /// Type-affinities contained in the engine's final corpus (Table II).
    pub corpus_affinities: usize,
    pub corpus_size: usize,
    /// Statements the binder/executor accepted across the whole campaign
    /// (the semantic-validity numerator). Deterministic; always counted.
    pub stmts_ok: usize,
    /// Statements the binder/executor rejected with a semantic error.
    pub stmts_err: usize,
    /// Cases cut short by a per-case execution budget (statement, row, or
    /// eval-depth limit). Aborted cases are never admitted to the corpus and
    /// their partial coverage is discarded.
    pub cases_aborted: usize,
    /// Worker threads that died mid-campaign (panicked outside the per-case
    /// isolation boundary). Their completed work up to the last shard sync is
    /// merged; their remaining budget slice is forfeited.
    pub workers_lost: usize,
    /// Wall-clock duration of the campaign, in milliseconds. Timing fields
    /// are the only non-deterministic part of the stats; see
    /// [`CampaignStats::deterministic_json`].
    pub wall_ms: u64,
    /// Test cases executed per second of wall time.
    pub execs_per_sec: f64,
    /// Worker threads that executed the campaign (1 for the serial path).
    pub workers: usize,
    /// Per-stage wall-clock breakdown and operator gain attribution, present
    /// when the campaign ran with telemetry enabled. Timing-bearing, so
    /// [`CampaignStats::deterministic_json`] strips it.
    pub stage_profile: Option<StageProfile>,
}

impl CampaignStats {
    pub fn bug_count(&self) -> usize {
        self.bugs.len()
    }

    /// Semantic-validity ratio in percent: binder-accepted statements over
    /// all *attempted* statements. Statements of statically-skipped cases
    /// (`--sema`) never reach the engine and are excluded from the
    /// denominator — this measures how valid the work the engine actually
    /// saw was. See [`CampaignStats::raw_validity_pct`] for the
    /// all-generated-statements number.
    pub fn validity_pct(&self) -> f64 {
        let total = self.stmts_ok + self.stmts_err;
        if total == 0 {
            100.0
        } else {
            self.stmts_ok as f64 * 100.0 / total as f64
        }
    }

    /// Semantic validity over *every* statement the fuzzer produced,
    /// counting statically-skipped statements (`--sema`) in the denominator
    /// — the pre-skip number, comparable across sema-on and sema-off runs.
    /// Identical to [`CampaignStats::validity_pct`] when `--sema` is off.
    pub fn raw_validity_pct(&self) -> f64 {
        let total = self.stmts_ok + self.stmts_err + self.sema_skipped_stmts;
        if total == 0 {
            100.0
        } else {
            self.stmts_ok as f64 * 100.0 / total as f64
        }
    }

    /// JSON with the wall-clock fields zeroed and the stage profile
    /// stripped, leaving only the deterministic campaign outcome. Two runs
    /// with the same engine seed and worker count must produce
    /// byte-identical output here — with or without telemetry attached.
    pub fn deterministic_json(&self) -> String {
        let mut c = self.clone();
        c.wall_ms = 0;
        c.execs_per_sec = 0.0;
        c.stage_profile = None;
        serde_json::to_string(&c).expect("stats serialize")
    }

    fn stamp_timing(&mut self, start: Instant, workers: usize) {
        let secs = start.elapsed().as_secs_f64();
        self.wall_ms = (secs * 1000.0) as u64;
        self.execs_per_sec = if secs > 0.0 { self.execs as f64 / secs } else { 0.0 };
        self.workers = workers;
    }
}

/// Per-campaign (or per-worker) logic-bug oracle state: the replay suite,
/// fingerprint dedup, findings, and the check counter. With oracles disabled
/// every call is a no-op costing one branch, keeping the hot loop unchanged.
struct OracleRuntime {
    suite: Option<OracleSuite>,
    seen: HashMap<u64, usize>,
    findings: Vec<LogicBugFinding>,
    checks: usize,
}

impl OracleRuntime {
    fn new(dialect: Dialect, cfg: OracleConfig, wal_dir: Option<&Path>, worker: usize) -> Self {
        Self {
            suite: cfg.enabled().then(|| OracleSuite::with_wal(dialect, cfg, wal_dir, worker)),
            seen: HashMap::new(),
            findings: Vec::new(),
            checks: 0,
        }
    }

    /// Run the configured oracles over one corpus-accepted case. New
    /// (fingerprint-deduplicated) findings are reduced immediately, like
    /// crash triage. Returns the statement units consumed, which the caller
    /// charges to the campaign budget. The logic oracles are timed as
    /// [`Stage::Oracle`], the recovery oracle as [`Stage::Recovery`].
    fn check(&mut self, case: &TestCase, worker: usize, exec: usize, tel: &Telemetry) -> usize {
        let Some(suite) = self.suite.as_mut() else { return 0 };
        let mut out = tel.time(Stage::Oracle, || suite.check_case_logic(case));
        let rec = tel.time(Stage::Recovery, || suite.check_case_recovery(case));
        out.bugs.extend(rec.bugs);
        out.checks += rec.checks;
        out.execs += rec.execs;
        let mut spent = out.execs;
        self.checks += out.checks;
        for bug in out.bugs {
            let fp = bug.fingerprint();
            if let std::collections::hash_map::Entry::Vacant(e) = self.seen.entry(fp) {
                e.insert(exec);
                let durability = bug.oracle == OracleKind::Recovery;
                let stage = if durability { Stage::Recovery } else { Stage::Oracle };
                let (reduced, evals) = tel.time(stage, || reduce_logic_bug(case, suite, &bug));
                spent += evals;
                if durability {
                    tel.emit(|| Event::DurabilityBugFound {
                        worker,
                        exec: exec as u64,
                        fingerprint: fp,
                    });
                } else {
                    tel.emit(|| Event::LogicBugFound {
                        worker,
                        exec: exec as u64,
                        oracle: bug.oracle.name().to_string(),
                        fingerprint: fp,
                    });
                }
                self.findings.push(LogicBugFinding {
                    bug,
                    first_exec: exec,
                    case_sql: case.to_sql(),
                    reduced_sql: reduced.to_sql(),
                });
            }
        }
        spent
    }

    /// Restore dedup state and findings from a checkpoint. `findings` must
    /// already be re-derived (see [`rebuild_logic_bugs`]); `checks` overwrites
    /// whatever the re-derivation replays cost, since those replays are
    /// bookkeeping, not campaign work.
    fn restore(&mut self, seen: &[(u64, usize)], findings: Vec<LogicBugFinding>, checks: usize) {
        self.seen = seen.iter().copied().collect();
        self.findings = findings;
        self.checks = checks;
    }
}

/// Every how-many-th statically-rejected case executes anyway, as an audit
/// of the analyzer against the real engine. A deterministic counter, not a
/// probability, so serial and resumed runs agree on which cases audit.
pub const SEMA_AUDIT_EVERY: usize = 16;

/// Per-campaign (or per-worker) static-analysis state for `--sema` runs:
/// the analyzer itself, the skip/audit counters, and the conformance-oracle
/// dedup + findings. The campaign holds it as an `Option` so a sema-less run
/// touches none of this.
struct SemaRuntime {
    sema: Sema,
    /// Statically-rejected cases seen so far; every
    /// [`SEMA_AUDIT_EVERY`]-th one executes anyway.
    audit: usize,
    /// Statements proven invalid across the campaign.
    rejects: usize,
    /// Statements of skipped cases — never attempted on the engine.
    skipped_stmts: usize,
    /// Divergence fingerprint → first exec.
    seen: HashMap<u64, usize>,
    findings: Vec<LogicBugFinding>,
}

/// The first analyzer-vs-engine disagreement in an executed case, as
/// `(statement index, analyzer_accepted, engine error text)`. Only
/// meaningful when the case ran to completion (`Outcome::Ok`): parse errors,
/// crashes and aborted cases leave no trustworthy per-statement outcome.
fn first_divergence(rep: &SeqReport, report: &ExecReport) -> Option<(usize, bool, String)> {
    for (i, v) in rep.verdicts.iter().enumerate() {
        if i >= report.statements_executed {
            break;
        }
        let engine_err = report.stmt_errors.iter().position(|&e| e == i);
        match (v.verdict, engine_err) {
            (Verdict::Accept, Some(k)) => {
                return Some((i, true, report.errors.get(k).cloned().unwrap_or_default()))
            }
            (Verdict::Reject, None) => {
                return Some((i, false, v.reason.unwrap_or("rejected").to_string()))
            }
            _ => {}
        }
    }
    None
}

/// Does `case` still exhibit a sema divergence in the given direction?
/// Deterministic (fresh analyzer + fresh engine per candidate), as
/// [`reduce_with`] requires.
fn sema_still_diverges(dialect: Dialect, case: &TestCase, analyzer_accepted: bool) -> bool {
    let rep = Sema::new(dialect).check_sequence(&case.statements);
    let mut db = Dbms::new(dialect);
    let out = db.execute_case(case);
    matches!(out.outcome, Outcome::Ok)
        && first_divergence(&rep, &out).is_some_and(|(_, acc, _)| acc == analyzer_accepted)
}

impl SemaRuntime {
    fn new(dialect: Dialect) -> Self {
        Self {
            sema: Sema::new(dialect),
            audit: 0,
            rejects: 0,
            skipped_stmts: 0,
            seen: HashMap::new(),
            findings: Vec::new(),
        }
    }

    /// Conformance oracle over one *executed* case: compare the analyzer's
    /// per-statement verdicts with what the engine actually did. A fresh
    /// (fingerprint-deduplicated) divergence is ddmin-reduced immediately,
    /// like crash and logic-bug triage; returns the statement units the
    /// reduction consumed. Timed as [`Stage::Sema`].
    #[allow(clippy::too_many_arguments)]
    fn conformance(
        &mut self,
        case: &TestCase,
        rep: &SeqReport,
        report: &ExecReport,
        dialect: Dialect,
        worker: usize,
        exec: usize,
        tel: &Telemetry,
    ) -> usize {
        if !matches!(report.outcome, Outcome::Ok) {
            return 0;
        }
        let Some((idx, analyzer_accepted, why)) = first_divergence(rep, report) else {
            return 0;
        };
        let bug = LogicBug {
            oracle: OracleKind::Sema,
            dialect,
            statement: idx,
            query: case.statements[idx].to_string(),
            detail: if analyzer_accepted {
                format!("analyzer accepted statement {idx} but the engine rejected it: {why}")
            } else {
                format!("analyzer rejected statement {idx} ({why}) but the engine accepted it")
            },
        };
        let fp = bug.fingerprint();
        let std::collections::hash_map::Entry::Vacant(e) = self.seen.entry(fp) else {
            return 0;
        };
        e.insert(exec);
        let (reduced, evals) = tel.time(Stage::Sema, || {
            reduce_with(case, |cand| sema_still_diverges(dialect, cand, analyzer_accepted))
        });
        tel.emit(|| Event::SemaDivergenceFound { worker, exec: exec as u64, fingerprint: fp });
        self.findings.push(LogicBugFinding {
            bug,
            first_exec: exec,
            case_sql: case.to_sql(),
            reduced_sql: reduced.to_sql(),
        });
        evals
    }

    /// Restore counters, dedup state and re-derived findings from a
    /// checkpoint (see [`rebuild_sema_findings`]).
    fn restore(&mut self, w: &WorkerResume, findings: Vec<LogicBugFinding>) {
        self.audit = w.sema_audit;
        self.rejects = w.sema_rejects;
        self.skipped_stmts = w.sema_skipped_stmts;
        self.seen = w.sema_seen.iter().copied().collect();
        self.findings = findings;
    }
}

/// Re-derive sema-divergence [`LogicBugFinding`]s from checkpointed
/// reproducers by replaying each case through analyzer + engine and matching
/// the stored fingerprint. The sema conformance oracle has no
/// [`OracleSuite`], so these cannot ride [`rebuild_logic_bugs`].
fn rebuild_sema_findings(
    dialect: Dialect,
    findings: &[LogicFindingCk],
) -> Result<Vec<LogicBugFinding>, String> {
    let sema = Sema::new(dialect);
    let mut db = Dbms::new(dialect);
    findings
        .iter()
        .map(|f| {
            let case = lego_sqlparser::parse_script(&f.case_sql)
                .map_err(|e| format!("checkpointed sema case re-parse: {e:?}"))?;
            let rep = sema.check_sequence(&case.statements);
            db.reset();
            let out = db.execute_case(&case);
            let (idx, analyzer_accepted, why) = first_divergence(&rep, &out).ok_or_else(|| {
                format!("checkpointed sema divergence no longer reproduces: {}", f.case_sql)
            })?;
            let bug = LogicBug {
                oracle: OracleKind::Sema,
                dialect,
                statement: idx,
                query: case.statements[idx].to_string(),
                detail: if analyzer_accepted {
                    format!("analyzer accepted statement {idx} but the engine rejected it: {why}")
                } else {
                    format!("analyzer rejected statement {idx} ({why}) but the engine accepted it")
                },
            };
            if bug.fingerprint() != f.fingerprint {
                return Err(format!(
                    "checkpointed sema divergence {:#x} re-derived with a different fingerprint: {}",
                    f.fingerprint, f.case_sql
                ));
            }
            Ok(LogicBugFinding {
                bug,
                first_exec: f.first_exec,
                case_sql: f.case_sql.clone(),
                reduced_sql: f.reduced_sql.clone(),
            })
        })
        .collect()
}

/// The synthetic report a statically-skipped case feeds back to the engine:
/// zero statements executed, empty coverage, `Ok` outcome.
fn skipped_report() -> ExecReport {
    ExecReport {
        outcome: Outcome::Ok,
        coverage: CovMap::new(),
        statements_executed: 0,
        errors: Vec::new(),
        stmt_errors: Vec::new(),
        last_rows: 0,
        stmts_ok: 0,
        stmts_err: 0,
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Execute one case with panic isolation: an engine panic is converted into
/// a synthetic [`CrashReport`] (bug id [`PANIC_BUG_ID`], stack keyed by the
/// panic message) instead of unwinding through the campaign loop. The DBMS
/// instance is left in an unspecified state; the campaign's per-case
/// `db.reset()` restores it to a fresh one before its next use.
pub(crate) fn execute_case_isolated(
    db: &mut Dbms,
    dialect: Dialect,
    case: &TestCase,
) -> ExecReport {
    match catch_unwind(AssertUnwindSafe(|| db.execute_case(case))) {
        Ok(report) => report,
        Err(payload) => ExecReport::engine_panic(dialect, &panic_message(payload.as_ref())),
    }
}

/// Crash triage for one deduplicated finding. Panic findings skip delta
/// debugging: re-executing prefixes of a panicking case would re-trip the
/// panic for *every* candidate, so the reproducer is kept whole.
fn triage_crash(
    case: &TestCase,
    dialect: Dialect,
    crash: &CrashReport,
    tel: &Telemetry,
) -> (String, usize) {
    if crash.bug_id == PANIC_BUG_ID {
        return (case.to_sql(), 0);
    }
    let (reduced, spent) =
        tel.time(Stage::Dedup, || crate::reduce::reduce_case(case, dialect, crash));
    (reduced.to_sql(), spent)
}

/// Re-derive full [`BugFinding`]s from checkpointed reproducers by replaying
/// each stored case through the isolated executor. Fails loudly if a stored
/// crash no longer reproduces (the environment changed under the checkpoint).
/// Replay executions are bookkeeping, not campaign work — nothing is charged
/// to the unit budget.
fn rebuild_bugs(dialect: Dialect, findings: &[FindingCk]) -> Result<Vec<BugFinding>, String> {
    let mut db = Dbms::new(dialect);
    findings
        .iter()
        .map(|f| {
            let case = lego_sqlparser::parse_script(&f.case_sql)
                .map_err(|e| format!("checkpointed crash case re-parse: {e:?}"))?;
            db.reset();
            let report = execute_case_isolated(&mut db, dialect, &case);
            let crash = report.crash().cloned().ok_or_else(|| {
                format!("checkpointed crash no longer reproduces: {}", f.case_sql)
            })?;
            Ok(BugFinding {
                crash,
                first_exec: f.first_exec,
                case_sql: f.case_sql.clone(),
                reduced_sql: f.reduced_sql.clone(),
            })
        })
        .collect()
}

/// Re-derive [`LogicBugFinding`]s by replaying each stored case through the
/// oracle suite and matching the checkpointed fingerprint.
fn rebuild_logic_bugs(
    oracle_rt: &mut OracleRuntime,
    findings: &[LogicFindingCk],
) -> Result<Vec<LogicBugFinding>, String> {
    if findings.is_empty() {
        return Ok(Vec::new());
    }
    let suite = oracle_rt
        .suite
        .as_mut()
        .ok_or("checkpoint has logic-bug findings but oracles are disabled")?;
    findings
        .iter()
        .map(|f| {
            let case = lego_sqlparser::parse_script(&f.case_sql)
                .map_err(|e| format!("checkpointed logic-bug case re-parse: {e:?}"))?;
            let out = suite.check_case(&case);
            let bug = out.bugs.into_iter().find(|b| b.fingerprint() == f.fingerprint).ok_or_else(
                || {
                    format!(
                        "checkpointed logic bug {:#x} no longer reproduces: {}",
                        f.fingerprint, f.case_sql
                    )
                },
            )?;
            Ok(LogicBugFinding {
                bug,
                first_exec: f.first_exec,
                case_sql: f.case_sql.clone(),
                reduced_sql: f.reduced_sql.clone(),
            })
        })
        .collect()
}

/// Run one engine against one DBMS for the budget (serial path, no
/// telemetry). Exactly [`run_campaign_observed`] with a disabled handle.
pub fn run_campaign(
    engine: &mut dyn FuzzEngine,
    dialect: Dialect,
    budget: Budget,
) -> CampaignStats {
    run_campaign_observed(engine, dialect, budget, &Telemetry::disabled())
}

/// Run one engine against one DBMS for the budget (serial path), reporting
/// progress through `tel`. Telemetry never influences the campaign: events
/// carry only logical time, and with a disabled handle every instrument
/// point is a single branch.
pub fn run_campaign_observed(
    engine: &mut dyn FuzzEngine,
    dialect: Dialect,
    budget: Budget,
    tel: &Telemetry,
) -> CampaignStats {
    run_campaign_with_oracles(engine, dialect, budget, tel, OracleConfig::disabled())
}

/// [`run_campaign_observed`] plus correctness oracles: after every
/// corpus-accepted (new-coverage, non-crashing) case, the configured oracles
/// replay it on dedicated DBMS instances; deduplicated wrong-result findings
/// go through the same reduce/report pipeline as crashes. Oracle replays
/// never feed coverage back into the campaign, and their statement
/// executions are charged to the unit budget like crash-triage executions —
/// an oracle-enabled campaign trades some fuzzing throughput for checking,
/// exactly as a real one would. The run stays a deterministic function of
/// (engine seed, worker count, oracle config).
pub fn run_campaign_with_oracles(
    engine: &mut dyn FuzzEngine,
    dialect: Dialect,
    budget: Budget,
    tel: &Telemetry,
    oracles: OracleConfig,
) -> CampaignStats {
    run_campaign_resilient(engine, dialect, budget, tel, oracles, &CheckpointCfg::disabled())
        .expect("campaign with checkpointing disabled cannot fail")
}

/// [`run_campaign_with_oracles`] plus fault tolerance and checkpoint/resume.
///
/// * Every case executes behind a panic-isolation boundary
///   ([`execute_case_isolated`]): an engine panic becomes a deduplicated
///   synthetic crash finding instead of killing the campaign.
/// * With `ckpt.every_units > 0`, the campaign performs a reseed barrier and
///   (if `ckpt.dir` is set) persists its complete state every `every_units`
///   statement units. A run resumed from such a checkpoint produces the
///   byte-identical [`CampaignStats::deterministic_json`] of an uninterrupted
///   run *with the same cadence* — the cadence is part of the campaign
///   configuration because each barrier reseeds the engine RNG.
///
/// Errors only on checkpoint I/O failure or an inconsistent resume.
pub fn run_campaign_resilient(
    engine: &mut dyn FuzzEngine,
    dialect: Dialect,
    budget: Budget,
    tel: &Telemetry,
    oracles: OracleConfig,
    ckpt: &CheckpointCfg,
) -> Result<CampaignStats, String> {
    run_campaign_durable(engine, dialect, budget, tel, oracles, ckpt, None)
}

/// [`run_campaign_resilient`] plus an explicit WAL directory for the
/// recovery oracle (`oracles.recovery`). With `wal_dir == None` the oracle
/// writes under the system temp dir; the WAL path never influences findings,
/// so the two spellings are byte-identical.
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_durable(
    engine: &mut dyn FuzzEngine,
    dialect: Dialect,
    budget: Budget,
    tel: &Telemetry,
    oracles: OracleConfig,
    ckpt: &CheckpointCfg,
    wal_dir: Option<&Path>,
) -> Result<CampaignStats, String> {
    run_campaign_full(engine, dialect, budget, tel, oracles, ckpt, wal_dir, false)
}

/// [`run_campaign_durable`] plus the grammar-rule coverage dimension. With
/// `rule_cov`, every non-aborted case is re-parsed through the instrumented
/// grammar ([`lego_sqlparser::parse_script_traced`]) and its rule→rule edges
/// are merged into a second virgin map; rule novelty admits cases the branch
/// map alone would reject and triggers [`FuzzEngine::rule_feedback`]. With
/// `rule_cov == false` this is byte-for-byte [`run_campaign_durable`].
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_full(
    engine: &mut dyn FuzzEngine,
    dialect: Dialect,
    budget: Budget,
    tel: &Telemetry,
    oracles: OracleConfig,
    ckpt: &CheckpointCfg,
    wal_dir: Option<&Path>,
    rule_cov: bool,
) -> Result<CampaignStats, String> {
    run_campaign_sema(engine, dialect, budget, tel, oracles, ckpt, wal_dir, rule_cov, false)
}

/// [`run_campaign_full`] plus the static sequence analyzer. With `sema`,
/// every case is classified by the `lego-sqlsema` binder before execution:
/// provably-invalid cases skip the engine entirely (charged only their
/// statement count, like the cheapest possible failing run), every
/// [`SEMA_AUDIT_EVERY`]-th rejected case executes anyway as an audit, and
/// executed cases are compared statement-by-statement against the analyzer's
/// verdicts — disagreements become deduplicated, ddmin-reduced
/// [`OracleKind::Sema`] findings in [`CampaignStats::logic_bugs`]. With
/// `sema == false` this is byte-for-byte [`run_campaign_full`].
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_sema(
    engine: &mut dyn FuzzEngine,
    dialect: Dialect,
    budget: Budget,
    tel: &Telemetry,
    oracles: OracleConfig,
    ckpt: &CheckpointCfg,
    wal_dir: Option<&Path>,
    rule_cov: bool,
    sema: bool,
) -> Result<CampaignStats, String> {
    let out = run_campaign_resilient_inner(
        engine, dialect, budget, tel, oracles, ckpt, wal_dir, rule_cov, sema,
    );
    if out.is_err() {
        // A dying campaign still owes the operator a closing heartbeat line
        // and flushed sinks (the success path does this in finish_telemetry).
        tel.finish();
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn run_campaign_resilient_inner(
    engine: &mut dyn FuzzEngine,
    dialect: Dialect,
    budget: Budget,
    tel: &Telemetry,
    oracles: OracleConfig,
    ckpt: &CheckpointCfg,
    wal_dir: Option<&Path>,
    rule_cov: bool,
    sema: bool,
) -> Result<CampaignStats, String> {
    // wall-clock only: feeds wall_ms / execs_per_sec, which
    // deterministic_json() strips. Never consulted for exploration decisions.
    let start = Instant::now();
    engine.attach_telemetry(tel.clone());
    let mut global = GlobalCoverage::new();
    // Grammar-rule virgin map (tentpole). `None` when the dimension is off so
    // the disabled path touches no extra state. The recorder map is recycled
    // between cases like the DBMS coverage map: the hot loop allocates once.
    let mut rules: Option<GlobalCoverage> =
        if rule_cov { Some(GlobalCoverage::new()) } else { None };
    let mut rule_recycle = CovMap::new();
    let mut bugs: Vec<BugFinding> = Vec::new();
    let mut seen_stacks: HashMap<u64, usize> = HashMap::new();
    let mut oracle_rt = OracleRuntime::new(dialect, oracles, wal_dir, 0);
    // Static analyzer (tentpole). `None` when off so the disabled path
    // touches no extra state.
    let mut sema_rt: Option<SemaRuntime> = sema.then(|| SemaRuntime::new(dialect));
    let mut curve = Vec::with_capacity(budget.snapshots + 1);
    let every = (budget.units / budget.snapshots.max(1)).max(1);

    let mut units = 0usize;
    let mut execs = 0usize;
    let mut stmts_ok = 0usize;
    let mut stmts_err = 0usize;
    let mut cases_aborted = 0usize;
    let mut next_snapshot = 0usize;
    let mut next_ckpt = if ckpt.active() { ckpt.every_units } else { usize::MAX };
    let mut ckpt_seq = 0usize;

    if let Some(resume) = &ckpt.resume {
        if resume.meta.workers != 1 {
            return Err(format!(
                "checkpoint was taken with {} workers; the serial path resumes only single-worker runs",
                resume.meta.workers
            ));
        }
        if resume.meta.rule_cov != rule_cov {
            return Err(format!(
                "checkpoint was taken with rule_cov={}; resuming with rule_cov={} would change the exploration order",
                resume.meta.rule_cov, rule_cov
            ));
        }
        if resume.meta.sema != sema {
            return Err(format!(
                "checkpoint was taken with sema={}; resuming with sema={} would change both the unit accounting and the exploration order",
                resume.meta.sema, sema
            ));
        }
        let w = &resume.workers[0];
        engine.restore(&w.engine)?;
        global = GlobalCoverage::from_sparse(&w.coverage);
        if let Some(rules) = rules.as_mut() {
            *rules = GlobalCoverage::from_sparse(&w.rule_coverage);
        }
        seen_stacks = w.seen_stacks.iter().copied().collect();
        bugs = rebuild_bugs(dialect, &w.bugs)?;
        let logic = rebuild_logic_bugs(&mut oracle_rt, &w.logic_bugs)?;
        oracle_rt.restore(&w.oracle_seen, logic, w.oracle_checks);
        if let Some(srt) = sema_rt.as_mut() {
            let sf = rebuild_sema_findings(dialect, &w.sema_findings)?;
            srt.restore(w, sf);
        }
        curve = w.curve.clone();
        units = w.units;
        execs = w.execs;
        stmts_ok = w.stmts_ok;
        stmts_err = w.stmts_err;
        cases_aborted = w.cases_aborted;
        next_snapshot = w.next_snapshot;
        next_ckpt = w.next_ckpt;
        ckpt_seq = w.seq;
    }
    if let Some(dir) = &ckpt.dir {
        checkpoint::write_meta(
            dir,
            &CheckpointMeta {
                version: CHECKPOINT_VERSION,
                fuzzer: engine.name().to_string(),
                dialect: dialect.name().to_string(),
                budget_units: budget.units,
                snapshots: budget.snapshots,
                workers: 1,
                sync_every: 0,
                every_units: ckpt.every_units,
                oracles: (oracles.tlp, oracles.norec, oracles.differential, oracles.recovery),
                rule_cov,
                sema,
            },
        )
        .map_err(|e| format!("write checkpoint meta: {e}"))?;
    }

    // One DBMS instance for the whole campaign, reset between cases; its
    // coverage map is recycled back after feedback so the hot loop does not
    // allocate per case.
    let mut db = Dbms::new(dialect);
    while units < budget.units {
        let case = tel.time(Stage::Generation, || engine.next_case());
        // Static pre-execution verdict (`--sema`): a provably-invalid case
        // skips engine execution entirely, charged its statement count plus
        // the reset fee (what the cheapest failing run would have cost).
        // Every SEMA_AUDIT_EVERY-th rejected case executes anyway, auditing
        // the analyzer against the real engine. Snapshot and checkpoint
        // boundaries passed during a skip fire at the next executed case —
        // deterministic either way, since the skip decision is.
        let mut sema_rep: Option<SeqReport> = None;
        if let Some(srt) = sema_rt.as_mut() {
            let rep = tel.time(Stage::Sema, || srt.sema.check_sequence(&case.statements));
            let rejects = rep.rejects();
            if rejects > 0 {
                srt.rejects += rejects;
                srt.audit += 1;
                let audit = srt.audit % SEMA_AUDIT_EVERY == 0;
                tel.emit(|| Event::SemaVerdict {
                    worker: 0,
                    exec: execs as u64,
                    statements: case.statements.len() as u64,
                    rejects: rejects as u64,
                    skipped: !audit,
                });
                if !audit {
                    tel.emit(|| Event::ExecStart { worker: 0, exec: execs as u64 });
                    units += case.statements.len() + CASE_RESET_COST;
                    srt.skipped_stmts += case.statements.len();
                    tel.emit(|| Event::ExecEnd {
                        worker: 0,
                        exec: execs as u64,
                        statements: 0,
                        ok: 0,
                        err: 0,
                        new_coverage: false,
                    });
                    let report = skipped_report();
                    tel.time(Stage::Feedback, || engine.feedback(&case, &report, false));
                    execs += 1;
                    continue;
                }
            }
            sema_rep = Some(rep);
        }
        db.reset();
        tel.emit(|| Event::ExecStart { worker: 0, exec: execs as u64 });
        let report = tel.time(Stage::Execution, || execute_case_isolated(&mut db, dialect, &case));
        units += report.statements_executed + CASE_RESET_COST;
        stmts_ok += report.stmts_ok;
        stmts_err += report.stmts_err;
        // A budget-tripped case never enters the corpus and its partial
        // coverage is discarded (like AFL's timeout inputs): retaining it
        // would reward runaway behaviour with novelty.
        let aborted = report.aborted();
        if let Some(reason) = aborted {
            cases_aborted += 1;
            tel.emit(|| Event::CaseAborted {
                worker: 0,
                exec: execs as u64,
                reason: reason.name().to_string(),
            });
        }
        let prev_edges = global.edges_covered();
        let new_coverage =
            aborted.is_none() && tel.time(Stage::CoverageUnion, || global.merge(&report.coverage));
        if new_coverage {
            let edges = global.edges_covered();
            // Stash the gain so the engine's feedback can attribute it to
            // the operator that produced this case.
            tel.set_pending_edges((edges - prev_edges) as u64);
            tel.live_progress(edges as u64);
        }
        // Rule-coverage dimension: re-parse through the instrumented grammar
        // and test the rule→rule edges against the rule virgin map. A case is
        // corpus-worthy if EITHER map reports novelty.
        let mut rule_delta = 0usize;
        if let Some(rules) = rules.as_mut() {
            if aborted.is_none() {
                let rec = CovRecorder::from_recycled(std::mem::take(&mut rule_recycle));
                let (parsed, map) = tel.time(Stage::CoverageUnion, || {
                    lego_sqlparser::parse_script_traced(&case.to_sql(), rec)
                });
                if parsed.is_ok() {
                    let before = rules.edges_covered();
                    if rules.merge(&map) {
                        // Hit-count bucket changes can report novelty with no
                        // new edge index; count only genuinely new edges but
                        // keep the bucketed admit verdict.
                        rule_delta = (rules.edges_covered() - before).max(1);
                    }
                }
                rule_recycle = map;
            }
        }
        let rule_new = rule_delta > 0;
        let accepted = new_coverage || rule_new;
        tel.emit(|| Event::ExecEnd {
            worker: 0,
            exec: execs as u64,
            statements: report.statements_executed as u64,
            ok: report.stmts_ok as u64,
            err: report.stmts_err as u64,
            new_coverage: accepted,
        });
        if let Some(crash) = report.crash() {
            let h = crash.stack_hash();
            if let std::collections::hash_map::Entry::Vacant(e) = seen_stacks.entry(h) {
                e.insert(execs);
                // Triage: minimize the reproducer right away (the reduction
                // executions are charged to the budget, like a real
                // campaign's triage time).
                let (reduced_sql, spent) = triage_crash(&case, dialect, crash, tel);
                units += spent;
                tel.emit(|| Event::BugFound {
                    worker: 0,
                    exec: execs as u64,
                    identifier: crash.identifier.clone(),
                    stack_hash: h,
                });
                bugs.push(BugFinding {
                    crash: crash.clone(),
                    first_exec: execs,
                    case_sql: case.to_sql(),
                    reduced_sql,
                });
            }
        }
        if accepted && report.crash().is_none() {
            units += oracle_rt.check(&case, 0, execs, tel);
        }
        // Conformance oracle: every executed case (including audits of
        // statically-rejected ones) checks the analyzer against the engine.
        if let (Some(srt), Some(rep)) = (sema_rt.as_mut(), &sema_rep) {
            units += srt.conformance(&case, rep, &report, dialect, 0, execs, tel);
        }
        tel.time(Stage::Feedback, || engine.feedback(&case, &report, accepted));
        if rule_new {
            // After feedback so the just-admitted case is the newest pool
            // entry when the engine boosts it.
            tel.time(Stage::Feedback, || engine.rule_feedback(&case, rule_delta));
            tel.emit(|| Event::RuleCoverageGain {
                worker: 0,
                exec: execs as u64,
                edges: rule_delta as u64,
            });
        }
        db.recycle(report.coverage);
        execs += 1;
        if units >= next_snapshot {
            curve.push((units, global.edges_covered()));
            next_snapshot += every;
        }
        if units >= next_ckpt {
            tel.time(Stage::Checkpoint, || -> Result<(), String> {
                while units >= next_ckpt {
                    next_ckpt += ckpt.every_units;
                }
                ckpt_seq += 1;
                // Reseed barrier first (state-changing even when nothing is
                // persisted), then snapshot the post-barrier state.
                let engine_snap = engine.checkpoint();
                if let Some(dir) = &ckpt.dir {
                    let engine_snap = engine_snap.ok_or_else(|| {
                        format!("engine '{}' does not support checkpointing", engine.name())
                    })?;
                    let ck = WorkerCheckpoint {
                        version: CHECKPOINT_VERSION,
                        worker: 0,
                        seq: ckpt_seq,
                        units,
                        execs,
                        stmts_ok,
                        stmts_err,
                        cases_aborted,
                        next_snapshot,
                        next_ckpt,
                        since_sync: 0,
                        curve: curve.clone(),
                        snaps: Vec::new(),
                        coverage: checkpoint::sparse_out(&global.to_sparse()),
                        rule_coverage: rules
                            .as_ref()
                            .map(|r| checkpoint::sparse_out(&r.to_sparse()))
                            .unwrap_or_default(),
                        seen_stacks: sorted_pairs(&seen_stacks),
                        bugs: bugs
                            .iter()
                            .map(|b| FindingCk {
                                first_exec: b.first_exec,
                                case_sql: b.case_sql.clone(),
                                reduced_sql: b.reduced_sql.clone(),
                            })
                            .collect(),
                        logic_bugs: oracle_rt
                            .findings
                            .iter()
                            .map(|b| LogicFindingCk {
                                first_exec: b.first_exec,
                                fingerprint: b.fingerprint(),
                                case_sql: b.case_sql.clone(),
                                reduced_sql: b.reduced_sql.clone(),
                            })
                            .collect(),
                        oracle_seen: sorted_pairs(&oracle_rt.seen),
                        oracle_checks: oracle_rt.checks,
                        sema_rejects: sema_rt.as_ref().map_or(0, |s| s.rejects),
                        sema_skipped_stmts: sema_rt.as_ref().map_or(0, |s| s.skipped_stmts),
                        sema_audit: sema_rt.as_ref().map_or(0, |s| s.audit),
                        sema_seen: sema_rt
                            .as_ref()
                            .map_or_else(Vec::new, |s| sorted_pairs(&s.seen)),
                        sema_findings: sema_rt
                            .as_ref()
                            .map_or_else(Vec::new, |s| logic_findings_out(&s.findings)),
                        engine: engine_snap,
                    };
                    let path = checkpoint::write_worker(dir, &ck)
                        .map_err(|e| format!("write checkpoint: {e}"))?;
                    tel.emit(|| Event::CheckpointWritten {
                        worker: 0,
                        seq: ckpt_seq as u64,
                        units: units as u64,
                        path: path.display().to_string(),
                    });
                }
                Ok(())
            })?;
        }
    }
    curve.push((units, global.edges_covered()));

    let corpus = engine.corpus();
    // Sema divergences join the logic-bug list, merged by discovery order
    // (stable on ties, oracle findings first). A sema-off run never enters
    // the branch, keeping its finding order byte-identical.
    let mut logic_bugs = oracle_rt.findings;
    let (sema_rejects, sema_skipped_stmts) = match sema_rt {
        Some(srt) => {
            logic_bugs.extend(srt.findings);
            logic_bugs.sort_by_key(|b| b.first_exec);
            (srt.rejects, srt.skipped_stmts)
        }
        None => (0, 0),
    };
    let durability_bugs = count_durability(&logic_bugs);
    let sema_divergences = count_sema(&logic_bugs);
    let mut stats = CampaignStats {
        fuzzer: engine.name().to_string(),
        dialect,
        execs,
        units,
        coverage_curve: curve,
        branches: global.edges_covered(),
        rule_branches: rules.as_ref().map_or(0, |r| r.edges_covered()),
        corpus_affinities: corpus_affinities(&corpus).len(),
        corpus_size: corpus.len(),
        stmts_ok,
        stmts_err,
        cases_aborted,
        workers_lost: 0,
        bugs,
        logic_bugs,
        oracle_checks: oracle_rt.checks,
        durability_bugs,
        sema_rejects,
        sema_skipped_stmts,
        sema_divergences,
        wall_ms: 0,
        execs_per_sec: 0.0,
        workers: 1,
        stage_profile: tel.stage_profile(),
    };
    stats.stamp_timing(start, 1);
    finish_telemetry(tel, &stats);
    Ok(stats)
}

/// How many findings are recovery-oracle durability bugs.
fn count_durability(findings: &[LogicBugFinding]) -> usize {
    findings.iter().filter(|f| f.bug.oracle == OracleKind::Recovery).count()
}

/// How many findings are analyzer-vs-engine conformance divergences.
fn count_sema(findings: &[LogicBugFinding]) -> usize {
    findings.iter().filter(|f| f.bug.oracle == OracleKind::Sema).count()
}

/// Findings in their checkpoint form (reproducers + fingerprint).
fn logic_findings_out(findings: &[LogicBugFinding]) -> Vec<LogicFindingCk> {
    findings
        .iter()
        .map(|b| LogicFindingCk {
            first_exec: b.first_exec,
            fingerprint: b.fingerprint(),
            case_sql: b.case_sql.clone(),
            reduced_sql: b.reduced_sql.clone(),
        })
        .collect()
}

/// Hash-map dedup state as a deterministically ordered pair list.
fn sorted_pairs(m: &HashMap<u64, usize>) -> Vec<(u64, usize)> {
    let mut v: Vec<(u64, usize)> = m.iter().map(|(&k, &e)| (k, e)).collect();
    v.sort_unstable();
    v
}

/// End-of-campaign telemetry: dump replayable bug artifacts, publish the
/// final gauges, flush the sinks and print the last heartbeat line.
fn finish_telemetry(tel: &Telemetry, stats: &CampaignStats) {
    if !tel.enabled() {
        return;
    }
    for b in &stats.bugs {
        tel.dump_bug_artifact(
            &stats.fuzzer,
            &stats.dialect.name().to_lowercase(),
            &b.crash.identifier,
            b.crash.stack_hash(),
            &b.reduced_sql,
        );
    }
    for b in &stats.logic_bugs {
        tel.dump_logic_bug_artifact(
            &stats.fuzzer,
            &stats.dialect.name().to_lowercase(),
            b.bug.oracle.name(),
            b.fingerprint(),
            &b.bug.detail,
            &b.reduced_sql,
        );
    }
    tel.set_live_gauges(stats.branches as u64, stats.corpus_size as u64);
    tel.finish();
}

/// Options for [`run_campaign_parallel`].
#[derive(Clone, Copy, Debug)]
pub struct ParallelOpts {
    /// Worker threads. `0` and `1` both select the exact serial path.
    pub workers: usize,
    /// Sync each worker's local coverage shard into the shared global map
    /// every this many cases (epoch-batched merge).
    pub sync_every: usize,
}

impl Default for ParallelOpts {
    fn default() -> Self {
        Self { workers: default_workers(), sync_every: 16 }
    }
}

/// Worker-count default: `LEGO_WORKERS` env var if set to a positive
/// integer, otherwise the machine's available parallelism.
pub fn default_workers() -> usize {
    if let Ok(v) = std::env::var("LEGO_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// What one worker brings back to the join point.
struct WorkerOut {
    fuzzer: String,
    execs: usize,
    units: usize,
    stmts_ok: usize,
    stmts_err: usize,
    cases_aborted: usize,
    /// Local-shard snapshots, one per curve point (`budget.snapshots` of
    /// them), each paired with the units the worker had consumed when it was
    /// taken. Stored sparse — a typical shard covers a few thousand of the
    /// 64 Ki edges, so dumping `(index, bucket)` pairs beats cloning the
    /// whole map per point.
    snaps: Vec<(usize, Vec<(usize, u8)>)>,
    bugs: Vec<BugFinding>,
    logic_bugs: Vec<LogicBugFinding>,
    oracle_checks: usize,
    sema_rejects: usize,
    sema_skipped_stmts: usize,
    corpus: Vec<Arc<TestCase>>,
}

/// One worker's slice of a parallel campaign: its index, budget share, and
/// the sync cadence it inherits from [`ParallelOpts`].
struct Shard {
    worker: usize,
    sub_units: usize,
    snapshots: usize,
    sync_every: usize,
}

/// Run one engine shard for a slice of the budget.
///
/// Coverage novelty (`new_coverage` feedback) is judged against the worker's
/// *local* shard only, so a worker's behaviour depends solely on its own
/// engine seed and budget slice — never on scheduler interleaving. The
/// shared [`CoverageSink`] is write-only during the run: every `sync_every`
/// cases the worker publishes the virgin-map words its shard dirtied since
/// the last sync (atomic `fetch_or` per changed word, zero atomics when the
/// epoch found nothing new — no lock anywhere). Because `fetch_or` is
/// commutative and idempotent, the collapsed sink is interleaving-
/// independent, exactly like the old mutex-guarded batch union.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    mut engine: Box<dyn FuzzEngine + Send>,
    shard_cfg: Shard,
    dialect: Dialect,
    sink: &CoverageSink,
    rule_sink: Option<&CoverageSink>,
    tel: &Telemetry,
    oracles: OracleConfig,
    ckpt: &CheckpointCfg,
    wal_dir: Option<&Path>,
    resume: Option<&WorkerResume>,
    sema: bool,
) -> Result<WorkerOut, String> {
    let Shard { worker, sub_units, snapshots, sync_every } = shard_cfg;
    engine.attach_telemetry(tel.clone());
    let mut shard = GlobalCoverage::new();
    // Rule-coverage shard, judged locally like the branch shard so worker
    // behaviour never depends on scheduler interleaving; published to the
    // shared rule sink at the same sync cadence.
    let mut rules: Option<GlobalCoverage> =
        if rule_sink.is_some() { Some(GlobalCoverage::new()) } else { None };
    let mut rule_recycle = CovMap::new();
    let mut bugs: Vec<BugFinding> = Vec::new();
    let mut seen_stacks: HashMap<u64, usize> = HashMap::new();
    let mut oracle_rt = OracleRuntime::new(dialect, oracles, wal_dir, worker);
    let mut sema_rt: Option<SemaRuntime> = sema.then(|| SemaRuntime::new(dialect));
    let mut snaps: Vec<(usize, Vec<(usize, u8)>)> = Vec::with_capacity(snapshots);
    let threshold = |i: usize| sub_units * i / snapshots.max(1);

    let mut units = 0usize;
    let mut execs = 0usize;
    let mut stmts_ok = 0usize;
    let mut stmts_err = 0usize;
    let mut cases_aborted = 0usize;
    let mut next_snap = 1usize;
    let mut since_sync = 0usize;
    let mut next_ckpt = if ckpt.active() { ckpt.every_units } else { usize::MAX };
    let mut ckpt_seq = 0usize;

    if let Some(w) = resume {
        engine.restore(&w.engine)?;
        shard = GlobalCoverage::from_sparse(&w.coverage);
        if let Some(rules) = rules.as_mut() {
            *rules = GlobalCoverage::from_sparse(&w.rule_coverage);
            if let Some(rs) = rule_sink {
                rs.publish_dirty(rules);
            }
        }
        seen_stacks = w.seen_stacks.iter().copied().collect();
        bugs = rebuild_bugs(dialect, &w.bugs)?;
        let logic = rebuild_logic_bugs(&mut oracle_rt, &w.logic_bugs)?;
        oracle_rt.restore(&w.oracle_seen, logic, w.oracle_checks);
        if let Some(srt) = sema_rt.as_mut() {
            let sf = rebuild_sema_findings(dialect, &w.sema_findings)?;
            srt.restore(w, sf);
        }
        snaps = w.snaps.clone();
        units = w.units;
        execs = w.execs;
        stmts_ok = w.stmts_ok;
        stmts_err = w.stmts_err;
        cases_aborted = w.cases_aborted;
        next_snap = w.next_snapshot;
        since_sync = w.since_sync;
        next_ckpt = w.next_ckpt;
        ckpt_seq = w.seq;
        // The sink starts empty on a resumed campaign; re-seed it with
        // everything this shard had already synced. `from_sparse` marked all
        // restored words dirty, so the dirty-publish covers the whole shard.
        sink.publish_dirty(&mut shard);
    }

    let mut db = Dbms::new(dialect);
    while units < sub_units {
        let case = tel.time(Stage::Generation, || engine.next_case());
        // Static pre-execution verdict — same skip/audit protocol as the
        // serial loop, judged against worker-local analyzer state only, so
        // worker behaviour stays independent of scheduler interleaving.
        let mut sema_rep: Option<SeqReport> = None;
        if let Some(srt) = sema_rt.as_mut() {
            let rep = tel.time(Stage::Sema, || srt.sema.check_sequence(&case.statements));
            let rejects = rep.rejects();
            if rejects > 0 {
                srt.rejects += rejects;
                srt.audit += 1;
                let audit = srt.audit % SEMA_AUDIT_EVERY == 0;
                tel.emit(|| Event::SemaVerdict {
                    worker,
                    exec: execs as u64,
                    statements: case.statements.len() as u64,
                    rejects: rejects as u64,
                    skipped: !audit,
                });
                if !audit {
                    tel.emit(|| Event::ExecStart { worker, exec: execs as u64 });
                    units += case.statements.len() + CASE_RESET_COST;
                    srt.skipped_stmts += case.statements.len();
                    tel.emit(|| Event::ExecEnd {
                        worker,
                        exec: execs as u64,
                        statements: 0,
                        ok: 0,
                        err: 0,
                        new_coverage: false,
                    });
                    let report = skipped_report();
                    tel.time(Stage::Feedback, || engine.feedback(&case, &report, false));
                    execs += 1;
                    continue;
                }
            }
            sema_rep = Some(rep);
        }
        db.reset();
        tel.emit(|| Event::ExecStart { worker, exec: execs as u64 });
        let report = tel.time(Stage::Execution, || execute_case_isolated(&mut db, dialect, &case));
        units += report.statements_executed + CASE_RESET_COST;
        stmts_ok += report.stmts_ok;
        stmts_err += report.stmts_err;
        let aborted = report.aborted();
        if let Some(reason) = aborted {
            cases_aborted += 1;
            tel.emit(|| Event::CaseAborted {
                worker,
                exec: execs as u64,
                reason: reason.name().to_string(),
            });
        }
        // Novelty (and gain attribution) is judged against the local shard
        // only, so the event stream of a worker depends solely on its own
        // seed and budget slice — never on scheduler interleaving. Aborted
        // cases contribute no coverage (see the serial loop).
        let prev_edges = shard.edges_covered();
        let new_coverage =
            aborted.is_none() && tel.time(Stage::CoverageUnion, || shard.merge(&report.coverage));
        if new_coverage {
            let edges = shard.edges_covered();
            tel.set_pending_edges((edges - prev_edges) as u64);
            tel.live_progress(edges as u64);
        }
        // Rule-coverage novelty, judged against the local rule shard only
        // (see the serial loop for the admit semantics).
        let mut rule_delta = 0usize;
        if let Some(rules) = rules.as_mut() {
            if aborted.is_none() {
                let rec = CovRecorder::from_recycled(std::mem::take(&mut rule_recycle));
                let (parsed, map) = tel.time(Stage::CoverageUnion, || {
                    lego_sqlparser::parse_script_traced(&case.to_sql(), rec)
                });
                if parsed.is_ok() {
                    let before = rules.edges_covered();
                    if rules.merge(&map) {
                        rule_delta = (rules.edges_covered() - before).max(1);
                    }
                }
                rule_recycle = map;
            }
        }
        let rule_new = rule_delta > 0;
        let accepted = new_coverage || rule_new;
        tel.emit(|| Event::ExecEnd {
            worker,
            exec: execs as u64,
            statements: report.statements_executed as u64,
            ok: report.stmts_ok as u64,
            err: report.stmts_err as u64,
            new_coverage: accepted,
        });
        if let Some(crash) = report.crash() {
            let h = crash.stack_hash();
            if let std::collections::hash_map::Entry::Vacant(e) = seen_stacks.entry(h) {
                e.insert(execs);
                let (reduced_sql, spent) = triage_crash(&case, dialect, crash, tel);
                units += spent;
                tel.emit(|| Event::BugFound {
                    worker,
                    exec: execs as u64,
                    identifier: crash.identifier.clone(),
                    stack_hash: h,
                });
                bugs.push(BugFinding {
                    crash: crash.clone(),
                    first_exec: execs,
                    case_sql: case.to_sql(),
                    reduced_sql,
                });
            }
        }
        if accepted && report.crash().is_none() {
            units += oracle_rt.check(&case, worker, execs, tel);
        }
        if let (Some(srt), Some(rep)) = (sema_rt.as_mut(), &sema_rep) {
            units += srt.conformance(&case, rep, &report, dialect, worker, execs, tel);
        }
        tel.time(Stage::Feedback, || engine.feedback(&case, &report, accepted));
        if rule_new {
            tel.time(Stage::Feedback, || engine.rule_feedback(&case, rule_delta));
            tel.emit(|| Event::RuleCoverageGain {
                worker,
                exec: execs as u64,
                edges: rule_delta as u64,
            });
        }
        db.recycle(report.coverage);
        execs += 1;
        since_sync += 1;
        if since_sync >= sync_every.max(1) {
            // Publishes only the words dirtied since the last sync; a
            // novelty-free epoch performs zero atomic operations.
            tel.time(Stage::CoverageUnion, || sink.publish_dirty(&mut shard));
            if let (Some(rules), Some(rs)) = (rules.as_mut(), rule_sink) {
                tel.time(Stage::CoverageUnion, || rs.publish_dirty(rules));
            }
            tel.emit(|| Event::WorkerSync { worker, execs: execs as u64 });
            since_sync = 0;
        }
        while next_snap <= snapshots && units >= threshold(next_snap) {
            snaps.push((units, shard.to_sparse()));
            next_snap += 1;
        }
        if units >= next_ckpt {
            tel.time(Stage::Checkpoint, || -> Result<(), String> {
                while units >= next_ckpt {
                    next_ckpt += ckpt.every_units;
                }
                ckpt_seq += 1;
                let engine_snap = engine.checkpoint();
                if let Some(dir) = &ckpt.dir {
                    let engine_snap = engine_snap.ok_or_else(|| {
                        format!("engine '{}' does not support checkpointing", engine.name())
                    })?;
                    let ck = WorkerCheckpoint {
                        version: CHECKPOINT_VERSION,
                        worker,
                        seq: ckpt_seq,
                        units,
                        execs,
                        stmts_ok,
                        stmts_err,
                        cases_aborted,
                        next_snapshot: next_snap,
                        next_ckpt,
                        since_sync,
                        curve: Vec::new(),
                        snaps: snaps
                            .iter()
                            .map(|(u, cov)| SnapCk {
                                units: *u,
                                coverage: checkpoint::sparse_out(cov),
                            })
                            .collect(),
                        coverage: checkpoint::sparse_out(&shard.to_sparse()),
                        rule_coverage: rules
                            .as_ref()
                            .map(|r| checkpoint::sparse_out(&r.to_sparse()))
                            .unwrap_or_default(),
                        seen_stacks: sorted_pairs(&seen_stacks),
                        bugs: bugs
                            .iter()
                            .map(|b| FindingCk {
                                first_exec: b.first_exec,
                                case_sql: b.case_sql.clone(),
                                reduced_sql: b.reduced_sql.clone(),
                            })
                            .collect(),
                        logic_bugs: oracle_rt
                            .findings
                            .iter()
                            .map(|b| LogicFindingCk {
                                first_exec: b.first_exec,
                                fingerprint: b.fingerprint(),
                                case_sql: b.case_sql.clone(),
                                reduced_sql: b.reduced_sql.clone(),
                            })
                            .collect(),
                        oracle_seen: sorted_pairs(&oracle_rt.seen),
                        oracle_checks: oracle_rt.checks,
                        sema_rejects: sema_rt.as_ref().map_or(0, |s| s.rejects),
                        sema_skipped_stmts: sema_rt.as_ref().map_or(0, |s| s.skipped_stmts),
                        sema_audit: sema_rt.as_ref().map_or(0, |s| s.audit),
                        sema_seen: sema_rt
                            .as_ref()
                            .map_or_else(Vec::new, |s| sorted_pairs(&s.seen)),
                        sema_findings: sema_rt
                            .as_ref()
                            .map_or_else(Vec::new, |s| logic_findings_out(&s.findings)),
                        engine: engine_snap,
                    };
                    let path = checkpoint::write_worker(dir, &ck)
                        .map_err(|e| format!("write checkpoint: {e}"))?;
                    tel.emit(|| Event::CheckpointWritten {
                        worker,
                        seq: ckpt_seq as u64,
                        units: units as u64,
                        path: path.display().to_string(),
                    });
                }
                Ok(())
            })?;
        }
    }
    // Pad to exactly `snapshots` points so the join can union the workers'
    // i-th snapshots pairwise.
    while next_snap <= snapshots {
        snaps.push((units, shard.to_sparse()));
        next_snap += 1;
    }
    // Final flush: after this, the sinks hold everything the shards saw.
    tel.time(Stage::CoverageUnion, || sink.publish_dirty(&mut shard));
    if let (Some(rules), Some(rs)) = (rules.as_mut(), rule_sink) {
        tel.time(Stage::CoverageUnion, || rs.publish_dirty(rules));
    }
    tel.emit(|| Event::WorkerSync { worker, execs: execs as u64 });

    // Sema conformance findings ride the same logic-bug channel as the
    // oracle findings (stable-sorted by discovery order, like the serial
    // join), so the parallel merge dedups them by fingerprint for free.
    let mut logic_bugs = oracle_rt.findings;
    let (sema_rejects, sema_skipped_stmts) = match sema_rt {
        Some(srt) => {
            logic_bugs.extend(srt.findings);
            logic_bugs.sort_by_key(|b| b.first_exec);
            (srt.rejects, srt.skipped_stmts)
        }
        None => (0, 0),
    };

    Ok(WorkerOut {
        fuzzer: engine.name().to_string(),
        execs,
        units,
        stmts_ok,
        stmts_err,
        cases_aborted,
        snaps,
        bugs,
        logic_bugs,
        oracle_checks: oracle_rt.checks,
        sema_rejects,
        sema_skipped_stmts,
        corpus: engine.corpus(),
    })
}

/// Run one campaign across `opts.workers` threads.
///
/// The budget is statically partitioned into per-worker slices; each worker
/// owns an engine shard (built by `factory(worker_index)`, which should give
/// every shard a distinct RNG seed), a reusable DBMS instance and a local
/// coverage shard. Workers batch-union their shards into a shared global map
/// every `opts.sync_every` cases and the join deterministically merges
/// curves, bugs and corpora, so the result depends only on the factory seeds
/// and the worker count — not on thread scheduling. With `workers <= 1` this
/// is exactly [`run_campaign`].
pub fn run_campaign_parallel<F>(
    factory: F,
    dialect: Dialect,
    budget: Budget,
    opts: ParallelOpts,
) -> CampaignStats
where
    F: Fn(usize) -> Box<dyn FuzzEngine + Send> + Sync,
{
    run_campaign_parallel_observed(factory, dialect, budget, opts, &Telemetry::disabled())
}

/// [`run_campaign_parallel`] with telemetry. Each worker gets a
/// [`Telemetry::worker_child`] that buffers its events privately (live
/// counters are shared so the heartbeat sees all workers in real time); the
/// join replays the buffers into the parent's sinks in worker-index order,
/// so the merged event stream is deterministic for a fixed seed set and
/// worker count.
pub fn run_campaign_parallel_observed<F>(
    factory: F,
    dialect: Dialect,
    budget: Budget,
    opts: ParallelOpts,
    tel: &Telemetry,
) -> CampaignStats
where
    F: Fn(usize) -> Box<dyn FuzzEngine + Send> + Sync,
{
    run_campaign_parallel_with_oracles(
        factory,
        dialect,
        budget,
        opts,
        tel,
        OracleConfig::disabled(),
    )
}

/// [`run_campaign_parallel_observed`] plus correctness oracles. Every worker
/// owns a private [`OracleSuite`] and deduplicates locally; the join merges
/// logic bugs across workers by fingerprint in `(first_exec, worker)` order,
/// exactly like crash dedup, so the merged report is a deterministic
/// function of (factory seeds, worker count, oracle config).
pub fn run_campaign_parallel_with_oracles<F>(
    factory: F,
    dialect: Dialect,
    budget: Budget,
    opts: ParallelOpts,
    tel: &Telemetry,
    oracles: OracleConfig,
) -> CampaignStats
where
    F: Fn(usize) -> Box<dyn FuzzEngine + Send> + Sync,
{
    run_campaign_parallel_resilient(
        factory,
        dialect,
        budget,
        opts,
        tel,
        oracles,
        &CheckpointCfg::disabled(),
    )
    .expect("campaign with checkpointing disabled cannot fail")
}

/// [`run_campaign_parallel_with_oracles`] plus fault tolerance and
/// checkpoint/resume — the parallel counterpart of
/// [`run_campaign_resilient`].
///
/// A worker that panics *outside* the per-case isolation boundary no longer
/// brings the whole campaign down: the join records a
/// [`Event::WorkerDied`], counts it in [`CampaignStats::workers_lost`], and
/// merges the surviving workers' results (the shared coverage sink keeps
/// whatever the dead worker had synced before dying). Each worker
/// checkpoints independently at its own unit boundaries; resume picks the
/// newest sequence number complete across *all* workers and requires the
/// same worker count the checkpoint was taken with.
pub fn run_campaign_parallel_resilient<F>(
    factory: F,
    dialect: Dialect,
    budget: Budget,
    opts: ParallelOpts,
    tel: &Telemetry,
    oracles: OracleConfig,
    ckpt: &CheckpointCfg,
) -> Result<CampaignStats, String>
where
    F: Fn(usize) -> Box<dyn FuzzEngine + Send> + Sync,
{
    run_campaign_parallel_durable(factory, dialect, budget, opts, tel, oracles, ckpt, None)
}

/// [`run_campaign_parallel_resilient`] plus an explicit WAL directory for
/// the recovery oracle — the parallel counterpart of
/// [`run_campaign_durable`]. Each worker journals to its own
/// `worker{NN}.wal` file under `wal_dir` and derives crash points from case
/// content only, so serial and N-worker recovery campaigns remain
/// byte-identical.
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_parallel_durable<F>(
    factory: F,
    dialect: Dialect,
    budget: Budget,
    opts: ParallelOpts,
    tel: &Telemetry,
    oracles: OracleConfig,
    ckpt: &CheckpointCfg,
    wal_dir: Option<&Path>,
) -> Result<CampaignStats, String>
where
    F: Fn(usize) -> Box<dyn FuzzEngine + Send> + Sync,
{
    run_campaign_parallel_full(factory, dialect, budget, opts, tel, oracles, ckpt, wal_dir, false)
}

/// [`run_campaign_parallel_durable`] plus the grammar-rule coverage
/// dimension — the parallel counterpart of [`run_campaign_full`]. Rule
/// novelty is judged against each worker's local rule shard and merged
/// through a second lock-free [`CoverageSink`], so serial and N-worker
/// rule-coverage campaigns with the same seeds stay deterministic.
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_parallel_full<F>(
    factory: F,
    dialect: Dialect,
    budget: Budget,
    opts: ParallelOpts,
    tel: &Telemetry,
    oracles: OracleConfig,
    ckpt: &CheckpointCfg,
    wal_dir: Option<&Path>,
    rule_cov: bool,
) -> Result<CampaignStats, String>
where
    F: Fn(usize) -> Box<dyn FuzzEngine + Send> + Sync,
{
    run_campaign_parallel_sema(
        factory, dialect, budget, opts, tel, oracles, ckpt, wal_dir, rule_cov, false,
    )
}

/// [`run_campaign_parallel_full`] plus the static sequence analyzer — the
/// parallel counterpart of [`run_campaign_sema`]. Each worker owns a
/// private [`Sema`] instance, so verdicts, skips and conformance findings
/// are judged against worker-local state only and the campaign stays
/// deterministic for a fixed seed set and worker count. With `sema = false`
/// this is byte-identical to [`run_campaign_parallel_full`].
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_parallel_sema<F>(
    factory: F,
    dialect: Dialect,
    budget: Budget,
    opts: ParallelOpts,
    tel: &Telemetry,
    oracles: OracleConfig,
    ckpt: &CheckpointCfg,
    wal_dir: Option<&Path>,
    rule_cov: bool,
    sema: bool,
) -> Result<CampaignStats, String>
where
    F: Fn(usize) -> Box<dyn FuzzEngine + Send> + Sync,
{
    let out = run_campaign_parallel_resilient_inner(
        factory, dialect, budget, opts, tel, oracles, ckpt, wal_dir, rule_cov, sema,
    );
    if out.is_err() {
        // Worker-death and checkpoint-I/O exits still flush the heartbeat
        // and sinks, like the success path's finish_telemetry.
        tel.finish();
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn run_campaign_parallel_resilient_inner<F>(
    factory: F,
    dialect: Dialect,
    budget: Budget,
    opts: ParallelOpts,
    tel: &Telemetry,
    oracles: OracleConfig,
    ckpt: &CheckpointCfg,
    wal_dir: Option<&Path>,
    rule_cov: bool,
    sema: bool,
) -> Result<CampaignStats, String>
where
    F: Fn(usize) -> Box<dyn FuzzEngine + Send> + Sync,
{
    let workers = opts.workers.max(1);
    if workers == 1 {
        let mut engine = factory(0);
        return run_campaign_resilient_inner(
            engine.as_mut(),
            dialect,
            budget,
            tel,
            oracles,
            ckpt,
            wal_dir,
            rule_cov,
            sema,
        );
    }

    // wall-clock only: feeds wall_ms / execs_per_sec, which
    // deterministic_json() strips. Never consulted for exploration decisions.
    let start = Instant::now();
    let snapshots = budget.snapshots.max(1);
    // Static partition: worker w gets units/N, the remainder spread over the
    // first (units % N) workers. Deterministic for a given (units, N).
    let slice = |w: usize| budget.units / workers + usize::from(w < budget.units % workers);

    if let Some(resume) = &ckpt.resume {
        if resume.meta.workers != workers {
            return Err(format!(
                "checkpoint was taken with {} workers, this campaign has {workers}; \
                 resume requires the same worker count",
                resume.meta.workers
            ));
        }
        if resume.meta.rule_cov != rule_cov {
            return Err(format!(
                "checkpoint was taken with rule_cov={}; resuming with rule_cov={} would change the exploration order",
                resume.meta.rule_cov, rule_cov
            ));
        }
        if resume.meta.sema != sema {
            return Err(format!(
                "checkpoint was taken with sema={}; resuming with sema={} would change both the unit accounting and the exploration order",
                resume.meta.sema, sema
            ));
        }
    }
    if let Some(dir) = &ckpt.dir {
        checkpoint::write_meta(
            dir,
            &CheckpointMeta {
                version: CHECKPOINT_VERSION,
                fuzzer: factory(0).name().to_string(),
                dialect: dialect.name().to_string(),
                budget_units: budget.units,
                snapshots: budget.snapshots,
                workers,
                sync_every: opts.sync_every,
                every_units: ckpt.every_units,
                oracles: (oracles.tlp, oracles.norec, oracles.differential, oracles.recovery),
                rule_cov,
                sema,
            },
        )
        .map_err(|e| format!("write checkpoint meta: {e}"))?;
    }

    let children: Vec<Telemetry> = (0..workers).map(|w| tel.worker_child(w)).collect();
    let sink = CoverageSink::new();
    let rule_sink: Option<CoverageSink> = if rule_cov { Some(CoverageSink::new()) } else { None };
    // Each slot: Ok(Ok) = survivor, Ok(Err) = fatal campaign error
    // (checkpoint I/O, bad resume), Err(msg) = worker died by panic.
    type Joined = Result<Result<WorkerOut, String>, String>;
    let joined: Vec<Joined> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let sink = &sink;
                let rule_sink = rule_sink.as_ref();
                let factory = &factory;
                let wtel = &children[w];
                let resume_w = ckpt.resume.as_ref().map(|r| &r.workers[w]);
                s.spawn(move || {
                    let shard = Shard {
                        worker: w,
                        sub_units: slice(w),
                        snapshots,
                        sync_every: opts.sync_every,
                    };
                    run_worker(
                        factory(w),
                        shard,
                        dialect,
                        sink,
                        rule_sink,
                        wtel,
                        oracles,
                        ckpt,
                        wal_dir,
                        resume_w,
                        sema,
                    )
                })
            })
            .collect();
        // Join in spawn order: every downstream merge sees workers in index
        // order regardless of which thread finished first.
        handles
            .into_iter()
            .map(|h| h.join().map_err(|payload| panic_message(payload.as_ref())))
            .collect()
    });
    let global = sink.into_global();
    let rule_branches = rule_sink.map_or(0, |rs| rs.into_global().edges_covered());
    // Replay buffered worker events into the parent sinks, in worker order.
    for child in &children {
        tel.merge_worker(child);
    }
    let mut outs: Vec<Option<WorkerOut>> = Vec::with_capacity(workers);
    let mut workers_lost = 0usize;
    for (w, slot) in joined.into_iter().enumerate() {
        match slot {
            Ok(Ok(out)) => outs.push(Some(out)),
            // An explicit error is a campaign-configuration or I/O failure,
            // not a crash-resilience event: surface it.
            Ok(Err(e)) => return Err(format!("worker {w}: {e}")),
            Err(panic_msg) => {
                workers_lost += 1;
                tel.emit(|| Event::WorkerDied { worker: w, error: panic_msg.clone() });
                outs.push(None);
            }
        }
    }
    if outs.iter().all(Option::is_none) {
        return Err("every campaign worker died".to_string());
    }

    // Merged coverage curve: the i-th point unions every surviving worker's
    // i-th local-shard snapshot; its x-coordinate is the units they had
    // consumed by then.
    let mut curve = Vec::with_capacity(snapshots + 1);
    curve.push((0, 0));
    for i in 0..snapshots {
        let mut merged = GlobalCoverage::new();
        let mut x = 0usize;
        for out in outs.iter().flatten() {
            let (u, shard) = &out.snaps[i];
            x += *u;
            merged.union_sparse(shard);
        }
        curve.push((x, merged.edges_covered()));
    }

    // Merged bug list: workers deduplicate locally; the join re-deduplicates
    // across workers by stack hash, in (first_exec, worker) order so the
    // survivor of a cross-worker duplicate is deterministic.
    let mut tagged: Vec<(usize, BugFinding)> = outs
        .iter()
        .enumerate()
        .filter_map(|(w, out)| out.as_ref().map(|o| (w, o)))
        .flat_map(|(w, out)| out.bugs.iter().cloned().map(move |b| (w, b)))
        .collect();
    tagged.sort_by_key(|&(w, ref b)| (b.first_exec, w));
    let mut seen = HashSet::new();
    let bugs: Vec<BugFinding> = tagged
        .into_iter()
        .filter(|(_, b)| seen.insert(b.crash.stack_hash()))
        .map(|(_, b)| b)
        .collect();

    // Merged logic-bug list: same scheme, keyed by oracle fingerprint.
    let mut tagged_logic: Vec<(usize, LogicBugFinding)> = outs
        .iter()
        .enumerate()
        .filter_map(|(w, out)| out.as_ref().map(|o| (w, o)))
        .flat_map(|(w, out)| out.logic_bugs.iter().cloned().map(move |b| (w, b)))
        .collect();
    tagged_logic.sort_by_key(|&(w, ref b)| (b.first_exec, w));
    let mut seen_fps = HashSet::new();
    let logic_bugs: Vec<LogicBugFinding> = tagged_logic
        .into_iter()
        .filter(|(_, b)| seen_fps.insert(b.fingerprint()))
        .map(|(_, b)| b)
        .collect();

    let survivors = || outs.iter().flatten();
    let corpus: Vec<Arc<TestCase>> = survivors().flat_map(|o| o.corpus.iter().cloned()).collect();
    let mut stats = CampaignStats {
        fuzzer: survivors().next().map(|o| o.fuzzer.clone()).unwrap_or_else(|| "unknown".into()),
        dialect,
        execs: survivors().map(|o| o.execs).sum(),
        units: survivors().map(|o| o.units).sum(),
        coverage_curve: curve,
        branches: global.edges_covered(),
        rule_branches,
        corpus_affinities: corpus_affinities(&corpus).len(),
        corpus_size: corpus.len(),
        stmts_ok: survivors().map(|o| o.stmts_ok).sum(),
        stmts_err: survivors().map(|o| o.stmts_err).sum(),
        cases_aborted: survivors().map(|o| o.cases_aborted).sum(),
        workers_lost,
        bugs,
        durability_bugs: count_durability(&logic_bugs),
        sema_rejects: survivors().map(|o| o.sema_rejects).sum(),
        sema_skipped_stmts: survivors().map(|o| o.sema_skipped_stmts).sum(),
        sema_divergences: count_sema(&logic_bugs),
        logic_bugs,
        oracle_checks: survivors().map(|o| o.oracle_checks).sum(),
        wall_ms: 0,
        execs_per_sec: 0.0,
        workers: 1,
        stage_profile: tel.stage_profile(),
    };
    stats.stamp_timing(start, workers);
    finish_telemetry(tel, &stats);
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzzer::{Config, LegoFuzzer};

    #[test]
    fn campaign_runs_and_gains_coverage() {
        let mut fz = LegoFuzzer::new(Dialect::Postgres, Config::default());
        let stats = run_campaign(&mut fz, Dialect::Postgres, Budget::execs(300));
        assert!(stats.execs > 50);
        assert!(stats.branches > 50, "branches = {}", stats.branches);
        assert!(stats.corpus_size > 1);
        // Coverage curve is monotone.
        for w in stats.coverage_curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn lego_beats_lego_minus_on_coverage() {
        // The Table IV ablation shape, at a budget past the early-noise
        // regime (MariaDB shows the largest effect in the paper: +25%),
        // summed over two RNG seeds to damp single-run variance.
        let budget = Budget::units(300_000);
        let (mut br, mut br_minus, mut aff, mut aff_minus) = (0usize, 0usize, 0usize, 0usize);
        for seed in [0x1e60u64, 7] {
            let cfg = Config { rng_seed: seed, ..Config::default() };
            let mut lego = LegoFuzzer::new(Dialect::MariaDb, cfg.clone());
            let s1 = run_campaign(&mut lego, Dialect::MariaDb, budget);
            let mut minus = LegoFuzzer::lego_minus(Dialect::MariaDb, cfg);
            let s2 = run_campaign(&mut minus, Dialect::MariaDb, budget);
            br += s1.branches;
            br_minus += s2.branches;
            aff += s1.corpus_affinities;
            aff_minus += s2.corpus_affinities;
        }
        assert!(br > br_minus, "LEGO {br} vs LEGO- {br_minus} branches");
        // The corpus-affinity crossover happens later in the run than the
        // branch crossover (LEGO- front-loads raw executions); at this test
        // budget we only require LEGO to be at parity — the full-budget
        // advantage is measured by the table4_ablation experiment.
        assert!(aff * 100 >= aff_minus * 95, "LEGO {aff} vs LEGO- {aff_minus} affinities");
    }

    #[test]
    fn bugs_are_deduplicated() {
        let mut fz = LegoFuzzer::new(Dialect::MariaDb, Config::default());
        let stats = run_campaign(&mut fz, Dialect::MariaDb, Budget::execs(4_000));
        let mut ids: Vec<u32> = stats.bugs.iter().map(|b| b.crash.bug_id).collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate bug reports");
    }

    #[test]
    fn stats_serialize_to_json() {
        let mut fz = LegoFuzzer::new(Dialect::Comdb2, Config::default());
        let stats = run_campaign(&mut fz, Dialect::Comdb2, Budget::execs(100));
        let json = serde_json::to_string(&stats).unwrap();
        assert!(json.contains("\"fuzzer\":\"LEGO\""));
    }
}
