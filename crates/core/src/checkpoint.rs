//! Campaign checkpoint/resume.
//!
//! A long campaign periodically serializes everything its outcome depends on
//! — engine state (seed pool with costs, affinity map, sequence store, AST
//! library, queues, RNG), coverage accumulator, crash/logic-bug dedup state,
//! and loop counters — so an interrupted run can be resumed and produce the
//! *byte-identical* final report of an uninterrupted run.
//!
//! Two constraints shape the format:
//!
//! * The vendored `serde` is serialize-only, so the write side uses derived
//!   [`serde::Serialize`] but the read side hand-walks a
//!   [`serde_json::Value`] tree (see the helpers at the bottom).
//! * `SmallRng` state cannot be extracted, so checkpoints use a *reseed
//!   barrier*: at every checkpoint boundary the engine draws one `u64`,
//!   reseeds itself from it, and records the value. An uninterrupted run
//!   performs the same reseed at the same boundary, so both RNG streams are
//!   identical from that point on — which is why the checkpoint cadence is
//!   part of campaign configuration, not an afterthought.
//!
//! Heavyweight state round-trips through SQL text: test cases are stored as
//! scripts and re-parsed, and crash/logic-bug findings store only their
//! reproducers — resume *re-derives* the `CrashReport`/`LogicBug` structures
//! by replaying the stored SQL, failing loudly if the environment no longer
//! reproduces them.

use serde::Serialize;
use std::io;
use std::path::{Path, PathBuf};

/// Format version; bumped on any layout change. v5 records the static
/// sequence-analysis state per worker (skip/audit counters, conformance
/// dedup, divergence findings) plus a `sema` meta flag (older checkpoints
/// parse with all of it empty/off). v4 records the grammar-rule coverage map
/// per worker plus a `rule_cov` meta flag (older checkpoints parse with both
/// empty/off, matching the runs that produced them). v3 records the recovery
/// oracle as a fourth `meta.json` oracle flag (older metas parse with it
/// defaulted off). v2 embeds engine snapshots whose `executed_ngrams` are
/// packed `u64` keys (see `lego::ngram`); v1 stored them as arrays of
/// kind-code arrays. The read side accepts
/// [`MIN_CHECKPOINT_VERSION`]..=[`CHECKPOINT_VERSION`] — v1 checkpoints are
/// migrated on restore.
pub const CHECKPOINT_VERSION: u64 = 5;

/// Oldest checkpoint format this build can still restore.
pub const MIN_CHECKPOINT_VERSION: u64 = 1;

/// Checkpointing configuration for a resilient campaign run.
#[derive(Clone, Debug, Default)]
pub struct CheckpointCfg {
    /// Checkpoint cadence in statement units; `0` disables checkpointing
    /// entirely (no reseed barriers, no files).
    pub every_units: usize,
    /// Directory for checkpoint files. `None` with a nonzero cadence still
    /// performs the deterministic reseed barriers (so a run that persists
    /// checkpoints and one that doesn't remain comparable) but writes
    /// nothing.
    pub dir: Option<PathBuf>,
    /// A loaded checkpoint to resume from. The caller must reconstruct the
    /// campaign with the same configuration (seeds, budget, workers, oracle
    /// config, cadence) the checkpoint was taken under; [`CheckpointMeta`]
    /// records those knobs and the runner validates what it can see.
    pub resume: Option<CampaignResume>,
}

impl CheckpointCfg {
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Checkpoint cadence with no persistence (tests, determinism barriers).
    pub fn every(units: usize) -> Self {
        Self { every_units: units, dir: None, resume: None }
    }

    pub fn active(&self) -> bool {
        self.every_units > 0
    }
}

/// Campaign-level configuration recorded once per checkpoint directory, so
/// `--resume` can validate (and a human can reconstruct) the run.
#[derive(Clone, Debug, Serialize)]
pub struct CheckpointMeta {
    pub version: u64,
    pub fuzzer: String,
    pub dialect: String,
    pub budget_units: usize,
    pub snapshots: usize,
    pub workers: usize,
    pub sync_every: usize,
    pub every_units: usize,
    /// `(tlp, norec, differential, recovery)`.
    pub oracles: (bool, bool, bool, bool),
    /// Whether the campaign ran with grammar-rule coverage feedback (v4;
    /// resume must be invoked with the same flag).
    pub rule_cov: bool,
    /// Whether the campaign ran with the static sequence analyzer (v5;
    /// resume must be invoked with the same flag — skipping changes both
    /// the unit accounting and the exploration order).
    pub sema: bool,
}

/// One worker's (or the serial loop's) complete persisted state.
#[derive(Clone, Debug, Serialize)]
pub struct WorkerCheckpoint {
    pub version: u64,
    pub worker: usize,
    /// Monotonic checkpoint sequence number for this worker (1-based).
    pub seq: usize,
    pub units: usize,
    pub execs: usize,
    pub stmts_ok: usize,
    pub stmts_err: usize,
    pub cases_aborted: usize,
    /// Serial loop: the next curve-snapshot unit threshold. Worker loop: the
    /// next snapshot *index*.
    pub next_snapshot: usize,
    /// Next checkpoint unit threshold (already advanced past `units`).
    pub next_ckpt: usize,
    /// Cases since the last shard sync (worker loop; 0 for serial).
    pub since_sync: usize,
    /// Coverage curve so far (serial loop; empty for workers).
    pub curve: Vec<(usize, usize)>,
    /// Local-shard snapshots so far (worker loop; empty for serial).
    pub snaps: Vec<SnapCk>,
    /// Sparse dump of the coverage accumulator.
    pub coverage: Vec<(usize, u64)>,
    /// Sparse dump of the grammar-rule coverage accumulator (v4; empty when
    /// the campaign ran without `rule_cov`).
    pub rule_coverage: Vec<(usize, u64)>,
    /// Crash dedup state: `(stack_hash, first_exec)`, hash-sorted.
    pub seen_stacks: Vec<(u64, usize)>,
    pub bugs: Vec<FindingCk>,
    pub logic_bugs: Vec<LogicFindingCk>,
    /// Oracle fingerprint dedup state: `(fingerprint, first_exec)`, sorted.
    pub oracle_seen: Vec<(u64, usize)>,
    pub oracle_checks: usize,
    /// Statements the static analyzer proved invalid (v5; 0 without
    /// `--sema`).
    pub sema_rejects: usize,
    /// Statements of statically-skipped cases, never attempted on the
    /// engine (v5; 0 without `--sema`).
    pub sema_skipped_stmts: usize,
    /// Statically-rejected cases seen so far — drives the every-Nth
    /// conformance-audit execution, so it must survive resume exactly (v5).
    pub sema_audit: usize,
    /// Conformance-divergence dedup state: `(fingerprint, first_exec)`,
    /// sorted (v5; empty without `--sema`).
    pub sema_seen: Vec<(u64, usize)>,
    /// Conformance-divergence findings; re-derived on resume by replaying
    /// each case through analyzer + engine (v5; empty without `--sema`).
    pub sema_findings: Vec<LogicFindingCk>,
    /// Engine snapshot (`FuzzEngine::checkpoint` payload), embedded as a
    /// JSON string.
    pub engine: String,
}

/// One coverage-curve snapshot of a worker's local shard.
#[derive(Clone, Debug, Serialize)]
pub struct SnapCk {
    pub units: usize,
    pub coverage: Vec<(usize, u64)>,
}

/// A crash finding, stored as its reproducers; the `CrashReport` itself is
/// re-derived on resume by replaying `case_sql`.
#[derive(Clone, Debug, Serialize)]
pub struct FindingCk {
    pub first_exec: usize,
    pub case_sql: String,
    pub reduced_sql: String,
}

/// A logic-bug finding; the `LogicBug` is re-derived on resume by replaying
/// `case_sql` through the oracle suite and matching `fingerprint`.
#[derive(Clone, Debug, Serialize)]
pub struct LogicFindingCk {
    pub first_exec: usize,
    pub fingerprint: u64,
    pub case_sql: String,
    pub reduced_sql: String,
}

/// Sparse-dump helper: widen the `u8` bucket bits for serialization.
pub fn sparse_out(entries: &[(usize, u8)]) -> Vec<(usize, u64)> {
    entries.iter().map(|&(i, v)| (i, v as u64)).collect()
}

// ---------------------------------------------------------------------------
// Write side
// ---------------------------------------------------------------------------

fn atomic_write(path: &Path, contents: &str) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

pub fn meta_path(dir: &Path) -> PathBuf {
    dir.join("meta.json")
}

pub fn worker_path(dir: &Path, worker: usize, seq: usize) -> PathBuf {
    dir.join(format!("worker{worker:02}_ckpt{seq:04}.json"))
}

/// Write `meta.json` (idempotent; called once at campaign start).
pub fn write_meta(dir: &Path, meta: &CheckpointMeta) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    atomic_write(&meta_path(dir), &serde_json::to_string_pretty(meta).expect("meta serialize"))
}

/// Atomically persist one worker checkpoint.
pub fn write_worker(dir: &Path, ck: &WorkerCheckpoint) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = worker_path(dir, ck.worker, ck.seq);
    atomic_write(&path, &serde_json::to_string(ck).expect("checkpoint serialize"))?;
    Ok(path)
}

// ---------------------------------------------------------------------------
// Read side (hand-rolled over serde_json::Value)
// ---------------------------------------------------------------------------

/// Parsed `meta.json`.
#[derive(Clone, Debug)]
pub struct ResumeMeta {
    pub fuzzer: String,
    pub dialect: String,
    pub budget_units: usize,
    pub snapshots: usize,
    pub workers: usize,
    pub sync_every: usize,
    pub every_units: usize,
    /// `(tlp, norec, differential, recovery)`. Pre-v3 metas carry three
    /// flags; recovery parses as `false`.
    pub oracles: (bool, bool, bool, bool),
    /// Grammar-rule coverage flag (v4; pre-v4 metas parse as `false`).
    pub rule_cov: bool,
    /// Static sequence-analysis flag (v5; pre-v5 metas parse as `false`).
    pub sema: bool,
}

/// Parsed per-worker checkpoint, ready for the campaign runner to apply.
#[derive(Clone, Debug)]
pub struct WorkerResume {
    pub worker: usize,
    pub seq: usize,
    pub units: usize,
    pub execs: usize,
    pub stmts_ok: usize,
    pub stmts_err: usize,
    pub cases_aborted: usize,
    pub next_snapshot: usize,
    pub next_ckpt: usize,
    pub since_sync: usize,
    pub curve: Vec<(usize, usize)>,
    pub snaps: Vec<(usize, Vec<(usize, u8)>)>,
    pub coverage: Vec<(usize, u8)>,
    /// Grammar-rule coverage shard (v4; empty for pre-v4 checkpoints and
    /// rule-cov-off runs).
    pub rule_coverage: Vec<(usize, u8)>,
    pub seen_stacks: Vec<(u64, usize)>,
    pub bugs: Vec<FindingCk>,
    pub logic_bugs: Vec<LogicFindingCk>,
    pub oracle_seen: Vec<(u64, usize)>,
    pub oracle_checks: usize,
    /// Static-analysis counters and state (v5; zero/empty for pre-v5
    /// checkpoints and sema-off runs).
    pub sema_rejects: usize,
    pub sema_skipped_stmts: usize,
    pub sema_audit: usize,
    pub sema_seen: Vec<(u64, usize)>,
    pub sema_findings: Vec<LogicFindingCk>,
    pub engine: String,
}

/// A complete, consistent checkpoint set: one [`WorkerResume`] per worker,
/// all at the same sequence number.
#[derive(Clone, Debug)]
pub struct CampaignResume {
    pub meta: ResumeMeta,
    pub workers: Vec<WorkerResume>,
}

/// Load the latest checkpoint set *complete across all workers* from `dir`.
///
/// Workers checkpoint independently, so the directory can hold e.g. seq 1-4
/// for worker 0 but only 1-3 for worker 1; the consistent resume point is
/// the minimum over workers of each worker's maximum sequence number.
pub fn load_campaign_checkpoint(dir: &Path) -> Result<CampaignResume, String> {
    let meta_src = std::fs::read_to_string(meta_path(dir))
        .map_err(|e| format!("read {}: {e}", meta_path(dir).display()))?;
    let meta = parse_meta(&meta_src)?;
    let mut seq = usize::MAX;
    for w in 0..meta.workers {
        let newest = (1..)
            .take_while(|&s| worker_path(dir, w, s).exists())
            .last()
            .ok_or_else(|| format!("no checkpoint files for worker {w} in {}", dir.display()))?;
        seq = seq.min(newest);
    }
    let mut workers = Vec::with_capacity(meta.workers);
    for w in 0..meta.workers {
        let path = worker_path(dir, w, seq);
        let src =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let parsed = parse_worker(&src).map_err(|e| format!("{}: {e}", path.display()))?;
        if parsed.worker != w {
            return Err(format!("{}: worker field is {}", path.display(), parsed.worker));
        }
        workers.push(parsed);
    }
    Ok(CampaignResume { meta, workers })
}

fn parse_meta(src: &str) -> Result<ResumeMeta, String> {
    let v = serde_json::from_str(src).map_err(|e| format!("meta.json: {e}"))?;
    let version = get_u64(&v, "version")?;
    if !(MIN_CHECKPOINT_VERSION..=CHECKPOINT_VERSION).contains(&version) {
        return Err(format!("meta.json: unsupported checkpoint version {version}"));
    }
    let oracles = get(&v, "oracles")?;
    // Pre-v3 metas carry three flags (no recovery oracle yet); v3 carries
    // four. Older checkpoints resume with recovery off, matching the runs
    // that produced them.
    let flags = oracles
        .as_array()
        .filter(|a| a.len() == 3 || a.len() == 4)
        .ok_or("meta.json: oracles must be a 3- or 4-element array")?;
    let flag = |i: usize| {
        if i >= flags.len() {
            return Ok(false);
        }
        flags[i].as_bool().ok_or("meta.json: oracle flag must be a bool")
    };
    Ok(ResumeMeta {
        fuzzer: get_string(&v, "fuzzer")?,
        dialect: get_string(&v, "dialect")?,
        budget_units: get_usize(&v, "budget_units")?,
        snapshots: get_usize(&v, "snapshots")?,
        workers: get_usize(&v, "workers")?,
        sync_every: get_usize(&v, "sync_every")?,
        every_units: get_usize(&v, "every_units")?,
        oracles: (flag(0)?, flag(1)?, flag(2)?, flag(3)?),
        // Pre-v4 metas predate rule coverage; those runs had it off.
        rule_cov: match v.get("rule_cov") {
            Some(b) => b.as_bool().ok_or("meta.json: rule_cov must be a bool")?,
            None => false,
        },
        // Pre-v5 metas predate the static analyzer; those runs had it off.
        sema: match v.get("sema") {
            Some(b) => b.as_bool().ok_or("meta.json: sema must be a bool")?,
            None => false,
        },
    })
}

fn parse_worker(src: &str) -> Result<WorkerResume, String> {
    let v = serde_json::from_str(src).map_err(|e| e.to_string())?;
    let version = get_u64(&v, "version")?;
    if !(MIN_CHECKPOINT_VERSION..=CHECKPOINT_VERSION).contains(&version) {
        return Err(format!("unsupported checkpoint version {version}"));
    }
    let snaps = get(&v, "snaps")?
        .as_array()
        .ok_or("snaps must be an array")?
        .iter()
        .map(|s| Ok((get_usize(s, "units")?, sparse_in(get(s, "coverage")?)?)))
        .collect::<Result<Vec<_>, String>>()?;
    Ok(WorkerResume {
        worker: get_usize(&v, "worker")?,
        seq: get_usize(&v, "seq")?,
        units: get_usize(&v, "units")?,
        execs: get_usize(&v, "execs")?,
        stmts_ok: get_usize(&v, "stmts_ok")?,
        stmts_err: get_usize(&v, "stmts_err")?,
        cases_aborted: get_usize(&v, "cases_aborted")?,
        next_snapshot: get_usize(&v, "next_snapshot")?,
        next_ckpt: get_usize(&v, "next_ckpt")?,
        since_sync: get_usize(&v, "since_sync")?,
        curve: pairs_usize(get(&v, "curve")?)?,
        snaps,
        coverage: sparse_in(get(&v, "coverage")?)?,
        // Pre-v4 checkpoints carry no rule map; resume with an empty one.
        rule_coverage: match v.get("rule_coverage") {
            Some(rc) => sparse_in(rc)?,
            None => Vec::new(),
        },
        seen_stacks: pairs_u64_usize(get(&v, "seen_stacks")?)?,
        bugs: findings_in(get(&v, "bugs")?)?,
        logic_bugs: logic_findings_in(get(&v, "logic_bugs")?)?,
        oracle_seen: pairs_u64_usize(get(&v, "oracle_seen")?)?,
        oracle_checks: get_usize(&v, "oracle_checks")?,
        // Pre-v5 checkpoints carry no static-analysis state; resume with it
        // zeroed, matching the sema-off runs that produced them.
        sema_rejects: opt_usize(&v, "sema_rejects")?,
        sema_skipped_stmts: opt_usize(&v, "sema_skipped_stmts")?,
        sema_audit: opt_usize(&v, "sema_audit")?,
        sema_seen: match v.get("sema_seen") {
            Some(s) => pairs_u64_usize(s)?,
            None => Vec::new(),
        },
        sema_findings: match v.get("sema_findings") {
            Some(f) => logic_findings_in(f)?,
            None => Vec::new(),
        },
        engine: get_string(&v, "engine")?,
    })
}

/// An integer field that pre-v5 checkpoints may omit; absent parses as 0.
fn opt_usize(v: &serde_json::Value, key: &str) -> Result<usize, String> {
    match v.get(key) {
        Some(x) => x.as_usize().ok_or_else(|| format!("field '{key}' must be an integer")),
        None => Ok(0),
    }
}

fn findings_in(v: &serde_json::Value) -> Result<Vec<FindingCk>, String> {
    v.as_array()
        .ok_or("bugs must be an array")?
        .iter()
        .map(|b| {
            Ok(FindingCk {
                first_exec: get_usize(b, "first_exec")?,
                case_sql: get_string(b, "case_sql")?,
                reduced_sql: get_string(b, "reduced_sql")?,
            })
        })
        .collect()
}

fn logic_findings_in(v: &serde_json::Value) -> Result<Vec<LogicFindingCk>, String> {
    v.as_array()
        .ok_or("logic_bugs must be an array")?
        .iter()
        .map(|b| {
            Ok(LogicFindingCk {
                first_exec: get_usize(b, "first_exec")?,
                fingerprint: get_u64(b, "fingerprint")?,
                case_sql: get_string(b, "case_sql")?,
                reduced_sql: get_string(b, "reduced_sql")?,
            })
        })
        .collect()
}

fn sparse_in(v: &serde_json::Value) -> Result<Vec<(usize, u8)>, String> {
    pair_array(v)?
        .iter()
        .map(|(a, b)| {
            let bits =
                b.as_u64().filter(|&x| x <= u8::MAX as u64).ok_or("bucket bits out of range")?;
            Ok((a.as_usize().ok_or("edge index must be an integer")?, bits as u8))
        })
        .collect()
}

// --- generic Value helpers, shared with the engine restore path -----------

pub(crate) fn get<'a>(
    v: &'a serde_json::Value,
    key: &str,
) -> Result<&'a serde_json::Value, String> {
    v.get(key).ok_or_else(|| format!("missing field '{key}'"))
}

pub(crate) fn get_u64(v: &serde_json::Value, key: &str) -> Result<u64, String> {
    get(v, key)?.as_u64().ok_or_else(|| format!("field '{key}' must be a u64"))
}

pub(crate) fn get_usize(v: &serde_json::Value, key: &str) -> Result<usize, String> {
    get(v, key)?.as_usize().ok_or_else(|| format!("field '{key}' must be an integer"))
}

pub(crate) fn get_string(v: &serde_json::Value, key: &str) -> Result<String, String> {
    Ok(get(v, key)?.as_str().ok_or_else(|| format!("field '{key}' must be a string"))?.to_string())
}

/// An array of 2-element arrays, the JSON shape of `Vec<(A, B)>`.
fn pair_array(
    v: &serde_json::Value,
) -> Result<Vec<(&serde_json::Value, &serde_json::Value)>, String> {
    v.as_array()
        .ok_or("expected an array of pairs")?
        .iter()
        .map(|p| {
            let p = p.as_array().filter(|a| a.len() == 2).ok_or("expected a 2-element array")?;
            Ok((&p[0], &p[1]))
        })
        .collect()
}

pub(crate) fn pairs_usize(v: &serde_json::Value) -> Result<Vec<(usize, usize)>, String> {
    pair_array(v)?
        .iter()
        .map(|(a, b)| {
            Ok((
                a.as_usize().ok_or("pair element must be an integer")?,
                b.as_usize().ok_or("pair element must be an integer")?,
            ))
        })
        .collect()
}

pub(crate) fn pairs_u64_usize(v: &serde_json::Value) -> Result<Vec<(u64, usize)>, String> {
    pair_array(v)?
        .iter()
        .map(|(a, b)| {
            Ok((
                a.as_u64().ok_or("pair element must be a u64")?,
                b.as_usize().ok_or("pair element must be an integer")?,
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lego_ckpt_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_worker(worker: usize, seq: usize) -> WorkerCheckpoint {
        WorkerCheckpoint {
            version: CHECKPOINT_VERSION,
            worker,
            seq,
            units: 1234,
            execs: 77,
            stmts_ok: 60,
            stmts_err: 17,
            cases_aborted: 2,
            next_snapshot: 3,
            next_ckpt: 2000,
            since_sync: 5,
            curve: vec![(0, 0), (500, 42)],
            snaps: vec![SnapCk { units: 500, coverage: vec![(9, 3)] }],
            coverage: vec![(3, 1), (70_000, 255)],
            rule_coverage: vec![(17, 1)],
            seen_stacks: vec![(u64::MAX - 3, 11)],
            bugs: vec![FindingCk {
                first_exec: 11,
                case_sql: "SELECT 1;".into(),
                reduced_sql: "SELECT 1;".into(),
            }],
            logic_bugs: vec![],
            oracle_seen: vec![(42, 7)],
            oracle_checks: 9,
            sema_rejects: 4,
            sema_skipped_stmts: 12,
            sema_audit: 3,
            sema_seen: vec![(77, 5)],
            sema_findings: vec![],
            engine: "{\"rng_reseed\":18446744073709551615}".into(),
        }
    }

    #[test]
    fn worker_checkpoint_roundtrips() {
        let ck = sample_worker(1, 2);
        let json = serde_json::to_string(&ck).unwrap();
        let back = parse_worker(&json).unwrap();
        assert_eq!(back.worker, 1);
        assert_eq!(back.seq, 2);
        assert_eq!(back.units, 1234);
        assert_eq!(back.coverage, vec![(3, 1u8), (70_000, 255u8)]);
        assert_eq!(back.seen_stacks, vec![(u64::MAX - 3, 11)]);
        assert_eq!(back.snaps, vec![(500, vec![(9, 3u8)])]);
        assert_eq!(back.bugs[0].case_sql, "SELECT 1;");
        // The embedded engine snapshot survives as an exact string, u64
        // precision included.
        let engine = serde_json::from_str(&back.engine).unwrap();
        assert_eq!(engine.get("rng_reseed").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn load_picks_latest_complete_sequence() {
        let dir = tmpdir("latest");
        let meta = CheckpointMeta {
            version: CHECKPOINT_VERSION,
            fuzzer: "LEGO".into(),
            dialect: "Postgres".into(),
            budget_units: 10_000,
            snapshots: 25,
            workers: 2,
            sync_every: 16,
            every_units: 2_000,
            oracles: (false, true, false, false),
            rule_cov: true,
            sema: true,
        };
        write_meta(&dir, &meta).unwrap();
        // Worker 0 reached seq 3; worker 1 only seq 2 — the consistent
        // resume point is seq 2.
        for (w, top) in [(0usize, 3usize), (1, 2)] {
            for s in 1..=top {
                write_worker(&dir, &sample_worker(w, s)).unwrap();
            }
        }
        let resume = load_campaign_checkpoint(&dir).unwrap();
        assert_eq!(resume.meta.workers, 2);
        assert_eq!(resume.meta.oracles, (false, true, false, false));
        assert_eq!(resume.workers.len(), 2);
        assert!(resume.workers.iter().all(|w| w.seq == 2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_worker_files_are_an_error() {
        let dir = tmpdir("missing");
        let meta = CheckpointMeta {
            version: CHECKPOINT_VERSION,
            fuzzer: "LEGO".into(),
            dialect: "Postgres".into(),
            budget_units: 1,
            snapshots: 1,
            workers: 2,
            sync_every: 16,
            every_units: 1,
            oracles: (false, false, false, false),
            rule_cov: false,
            sema: false,
        };
        write_meta(&dir, &meta).unwrap();
        write_worker(&dir, &sample_worker(0, 1)).unwrap();
        let err = load_campaign_checkpoint(&dir).unwrap_err();
        assert!(err.contains("worker 1"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut ck = sample_worker(0, 1);
        ck.version = 999;
        let err = parse_worker(&serde_json::to_string(&ck).unwrap()).unwrap_err();
        assert!(err.contains("version"), "{err}");
    }
}
