//! Restore the v1 fixture snapshot and print the next 20 scheduled cases
//! (fixture helper for the checkpoint migration test).

use lego::campaign::FuzzEngine;
use lego::fuzzer::{Config, LegoFuzzer};
use lego_sqlast::Dialect;

fn main() {
    let snap = std::fs::read_to_string("crates/core/tests/fixtures/engine_snapshot_v1.json")
        .expect("fixture");
    let mut fz = LegoFuzzer::new(Dialect::Postgres, Config::default());
    fz.restore(&snap).expect("restore");
    let mut db = lego_dbms::Dbms::new(Dialect::Postgres);
    let mut global = lego_coverage::GlobalCoverage::new();
    for _ in 0..20 {
        let case = fz.next_case();
        db.reset();
        let report = db.execute_case(&case);
        let new_coverage = global.merge(&report.coverage);
        fz.feedback(&case, &report, new_coverage);
        println!("{}", case.to_sql().replace('\n', " "));
    }
}
