//! Dump a LEGO engine snapshot after a short driven burst (fixture helper).

use lego::campaign::FuzzEngine;
use lego::fuzzer::{Config, LegoFuzzer};
use lego_sqlast::Dialect;

fn main() {
    let mut fz = LegoFuzzer::new(Dialect::Postgres, Config::default());
    let mut db = lego_dbms::Dbms::new(Dialect::Postgres);
    let mut global = lego_coverage::GlobalCoverage::new();
    for _ in 0..60 {
        let case = fz.next_case();
        db.reset();
        let report = db.execute_case(&case);
        let new_coverage = global.merge(&report.coverage);
        fz.feedback(&case, &report, new_coverage);
    }
    println!("{}", fz.checkpoint().expect("LEGO supports checkpointing"));
}
