//! Scalar expressions, data types, and their SQL rendering.

use std::fmt;

/// SQL data types supported by the simulated engines.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DataType {
    Int,
    BigInt,
    SmallInt,
    Float,
    Double,
    Decimal(u8, u8),
    Text,
    VarChar(u32),
    Char(u32),
    Bool,
    Blob,
    Date,
    Time,
    Timestamp,
    Year,
}

impl DataType {
    /// A small pool used by generators/mutators.
    pub const COMMON: &'static [DataType] = &[
        DataType::Int,
        DataType::BigInt,
        DataType::Float,
        DataType::Text,
        DataType::VarChar(100),
        DataType::Bool,
        DataType::Blob,
        DataType::Timestamp,
        DataType::Year,
        DataType::Decimal(10, 2),
    ];

    /// Is this a numeric type (for coercion logic)?
    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            DataType::Int
                | DataType::BigInt
                | DataType::SmallInt
                | DataType::Float
                | DataType::Double
                | DataType::Decimal(..)
                | DataType::Year
        )
    }

    pub fn is_textual(self) -> bool {
        matches!(self, DataType::Text | DataType::VarChar(_) | DataType::Char(_))
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => f.write_str("INT"),
            DataType::BigInt => f.write_str("BIGINT"),
            DataType::SmallInt => f.write_str("SMALLINT"),
            DataType::Float => f.write_str("FLOAT"),
            DataType::Double => f.write_str("DOUBLE"),
            DataType::Decimal(p, s) => write!(f, "DECIMAL({}, {})", p, s),
            DataType::Text => f.write_str("TEXT"),
            DataType::VarChar(n) => write!(f, "VARCHAR({})", n),
            DataType::Char(n) => write!(f, "CHAR({})", n),
            DataType::Bool => f.write_str("BOOLEAN"),
            DataType::Blob => f.write_str("BLOB"),
            DataType::Date => f.write_str("DATE"),
            DataType::Time => f.write_str("TIME"),
            DataType::Timestamp => f.write_str("TIMESTAMP"),
            DataType::Year => f.write_str("YEAR"),
        }
    }
}

/// A (possibly qualified) column reference.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ColumnRef {
    pub table: Option<String>,
    pub column: String,
}

impl ColumnRef {
    pub fn bare(column: impl Into<String>) -> Self {
        Self { table: None, column: column.into() }
    }

    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        Self { table: Some(table.into()), column: column.into() }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(t) = &self.table {
            write!(f, "{}.{}", t, self.column)
        } else {
            f.write_str(&self.column)
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnaryOp {
    Neg,
    Not,
    Plus,
}

impl UnaryOp {
    pub fn symbol(self) -> &'static str {
        match self {
            UnaryOp::Neg => "-",
            UnaryOp::Not => "NOT ",
            UnaryOp::Plus => "+",
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Concat,
}

impl BinOp {
    pub const ALL: &'static [BinOp] = &[
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Mod,
        BinOp::Eq,
        BinOp::Ne,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
        BinOp::And,
        BinOp::Or,
        BinOp::Concat,
    ];

    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Concat => "||",
        }
    }

    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }
}

/// A plain or aggregate function call.
#[derive(Clone, PartialEq, Debug)]
pub struct FuncCall {
    pub name: String,
    pub args: Vec<Expr>,
    pub distinct: bool,
    /// `COUNT(*)`-style star argument.
    pub star: bool,
}

impl FuncCall {
    pub fn new(name: impl Into<String>, args: Vec<Expr>) -> Self {
        Self { name: name.into(), args, distinct: false, star: false }
    }

    pub fn star(name: impl Into<String>) -> Self {
        Self { name: name.into(), args: vec![], distinct: false, star: true }
    }
}

impl fmt::Display for FuncCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        if self.star {
            f.write_str("*")?;
        } else {
            for (i, a) in self.args.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{}", a)?;
            }
        }
        f.write_str(")")
    }
}

/// `ORDER BY` item.
#[derive(Clone, PartialEq, Debug)]
pub struct OrderItem {
    pub expr: Expr,
    pub desc: bool,
}

impl fmt::Display for OrderItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.expr)?;
        if self.desc {
            f.write_str(" DESC")?;
        }
        Ok(())
    }
}

/// Window frame units.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameUnit {
    Rows,
    Range,
}

#[derive(Clone, PartialEq, Debug)]
pub enum FrameBound {
    UnboundedPreceding,
    Preceding(Box<Expr>),
    CurrentRow,
    Following(Box<Expr>),
    UnboundedFollowing,
}

impl fmt::Display for FrameBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameBound::UnboundedPreceding => f.write_str("UNBOUNDED PRECEDING"),
            FrameBound::Preceding(e) => write!(f, "{} PRECEDING", e),
            FrameBound::CurrentRow => f.write_str("CURRENT ROW"),
            FrameBound::Following(e) => write!(f, "{} FOLLOWING", e),
            FrameBound::UnboundedFollowing => f.write_str("UNBOUNDED FOLLOWING"),
        }
    }
}

#[derive(Clone, PartialEq, Debug)]
pub struct FrameClause {
    pub unit: FrameUnit,
    pub start: FrameBound,
    pub end: Option<FrameBound>,
}

impl fmt::Display for FrameClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let unit = match self.unit {
            FrameUnit::Rows => "ROWS",
            FrameUnit::Range => "RANGE",
        };
        match &self.end {
            Some(end) => write!(f, "{} BETWEEN {} AND {}", unit, self.start, end),
            None => write!(f, "{} {}", unit, self.start),
        }
    }
}

/// `OVER (...)` specification.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct WindowSpec {
    pub partition_by: Vec<Expr>,
    pub order_by: Vec<OrderItem>,
    pub frame: Option<FrameClause>,
}

impl fmt::Display for WindowSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        let mut need_space = false;
        if !self.partition_by.is_empty() {
            f.write_str("PARTITION BY ")?;
            for (i, e) in self.partition_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{}", e)?;
            }
            need_space = true;
        }
        if !self.order_by.is_empty() {
            if need_space {
                f.write_str(" ")?;
            }
            f.write_str("ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{}", o)?;
            }
            need_space = true;
        }
        if let Some(fr) = &self.frame {
            if need_space {
                f.write_str(" ")?;
            }
            write!(f, "{}", fr)?;
        }
        f.write_str(")")
    }
}

/// A scalar expression.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    Null,
    Bool(bool),
    Integer(i64),
    Float(f64),
    Str(String),
    Column(ColumnRef),
    Unary(UnaryOp, Box<Expr>),
    Binary(Box<Expr>, BinOp, Box<Expr>),
    Like { expr: Box<Expr>, pattern: Box<Expr>, negated: bool },
    InList { expr: Box<Expr>, list: Vec<Expr>, negated: bool },
    Between { expr: Box<Expr>, low: Box<Expr>, high: Box<Expr>, negated: bool },
    IsNull { expr: Box<Expr>, negated: bool },
    Case { operand: Option<Box<Expr>>, whens: Vec<(Expr, Expr)>, else_: Option<Box<Expr>> },
    Func(FuncCall),
    Window { func: FuncCall, spec: WindowSpec },
    Cast { expr: Box<Expr>, ty: DataType },
    Subquery(Box<crate::ast::Query>),
    Exists { query: Box<crate::ast::Query>, negated: bool },
}

impl Expr {
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(ColumnRef::bare(name))
    }

    pub fn int(v: i64) -> Expr {
        Expr::Integer(v)
    }

    pub fn str(v: impl Into<String>) -> Expr {
        Expr::Str(v.into())
    }

    pub fn binary(l: Expr, op: BinOp, r: Expr) -> Expr {
        Expr::Binary(Box::new(l), op, Box::new(r))
    }

    pub fn eq(l: Expr, r: Expr) -> Expr {
        Expr::binary(l, BinOp::Eq, r)
    }

    pub fn is_literal(&self) -> bool {
        matches!(
            self,
            Expr::Null | Expr::Bool(_) | Expr::Integer(_) | Expr::Float(_) | Expr::Str(_)
        )
    }
}

fn sql_escape(s: &str) -> String {
    s.replace('\'', "''")
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Null => f.write_str("NULL"),
            Expr::Bool(true) => f.write_str("TRUE"),
            Expr::Bool(false) => f.write_str("FALSE"),
            Expr::Integer(v) => write!(f, "{}", v),
            Expr::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() {
                    write!(f, "{:.1}", v)
                } else {
                    write!(f, "{}", v)
                }
            }
            Expr::Str(s) => write!(f, "'{}'", sql_escape(s)),
            Expr::Column(c) => write!(f, "{}", c),
            Expr::Unary(op, e) => write!(f, "{}({})", op.symbol(), e),
            Expr::Binary(l, op, r) => write!(f, "({} {} {})", l, op.symbol(), r),
            Expr::Like { expr, pattern, negated } => {
                write!(f, "({} {}LIKE {})", expr, if *negated { "NOT " } else { "" }, pattern)
            }
            Expr::InList { expr, list, negated } => {
                write!(f, "({} {}IN (", expr, if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{}", e)?;
                }
                f.write_str("))")
            }
            Expr::Between { expr, low, high, negated } => {
                write!(
                    f,
                    "({} {}BETWEEN {} AND {})",
                    expr,
                    if *negated { "NOT " } else { "" },
                    low,
                    high
                )
            }
            Expr::IsNull { expr, negated } => {
                write!(f, "({} IS {}NULL)", expr, if *negated { "NOT " } else { "" })
            }
            Expr::Case { operand, whens, else_ } => {
                f.write_str("CASE")?;
                if let Some(op) = operand {
                    write!(f, " {}", op)?;
                }
                for (w, t) in whens {
                    write!(f, " WHEN {} THEN {}", w, t)?;
                }
                if let Some(e) = else_ {
                    write!(f, " ELSE {}", e)?;
                }
                f.write_str(" END")
            }
            Expr::Func(c) => write!(f, "{}", c),
            Expr::Window { func, spec } => write!(f, "{} OVER {}", func, spec),
            Expr::Cast { expr, ty } => write!(f, "CAST({} AS {})", expr, ty),
            Expr::Subquery(q) => write!(f, "({})", q),
            Expr::Exists { query, negated } => {
                write!(f, "({}EXISTS ({}))", if *negated { "NOT " } else { "" }, query)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_rendering() {
        assert_eq!(Expr::int(7).to_string(), "7");
        assert_eq!(Expr::str("a'b").to_string(), "'a''b'");
        assert_eq!(Expr::Null.to_string(), "NULL");
        assert_eq!(Expr::Bool(true).to_string(), "TRUE");
        assert_eq!(Expr::Float(1.0).to_string(), "1.0");
        assert_eq!(Expr::Float(1.5).to_string(), "1.5");
    }

    #[test]
    fn binary_and_comparison() {
        let e = Expr::binary(Expr::col("v1"), BinOp::Add, Expr::int(1));
        assert_eq!(e.to_string(), "(v1 + 1)");
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
    }

    #[test]
    fn window_rendering() {
        let w = Expr::Window {
            func: FuncCall::new("LEAD", vec![Expr::Bool(true)]),
            spec: WindowSpec {
                partition_by: vec![],
                order_by: vec![OrderItem { expr: Expr::col("v1"), desc: false }],
                frame: Some(FrameClause {
                    unit: FrameUnit::Range,
                    start: FrameBound::Preceding(Box::new(Expr::int(1))),
                    end: Some(FrameBound::Following(Box::new(Expr::int(16)))),
                }),
            },
        };
        assert_eq!(
            w.to_string(),
            "LEAD(TRUE) OVER (ORDER BY v1 RANGE BETWEEN 1 PRECEDING AND 16 FOLLOWING)"
        );
    }

    #[test]
    fn case_rendering() {
        let e = Expr::Case {
            operand: None,
            whens: vec![(Expr::Bool(true), Expr::int(1))],
            else_: Some(Box::new(Expr::int(0))),
        };
        assert_eq!(e.to_string(), "CASE WHEN TRUE THEN 1 ELSE 0 END");
    }

    #[test]
    fn datatype_rendering_and_classification() {
        assert_eq!(DataType::VarChar(100).to_string(), "VARCHAR(100)");
        assert_eq!(DataType::Decimal(10, 2).to_string(), "DECIMAL(10, 2)");
        assert!(DataType::Year.is_numeric());
        assert!(DataType::Text.is_textual());
        assert!(!DataType::Blob.is_numeric());
    }
}
