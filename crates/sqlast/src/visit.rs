//! AST walkers.
//!
//! The fuzzer needs two views of a statement: read-only structural queries
//! (which tables does it touch? does it contain a window function?) and a
//! mutable walk used by the instantiator to rebind identifiers and refill
//! literals ([`MutVisitor`]).

use crate::ast::*;
use crate::expr::Expr;

/// Mutable visitor over the names and literals of a statement.
///
/// Default methods do nothing, so implementors override only what they need.
pub trait MutVisitor {
    /// Every table (or view) name position: definitions and references.
    fn table_name(&mut self, _name: &mut String) {}
    /// Every column-name position (column refs, column defs, insert lists…).
    fn column_name(&mut self, _name: &mut String) {}
    /// Every full column-reference expression, qualifier included. The
    /// default delegates to the name hooks, so implementors that only care
    /// about names keep working unchanged.
    fn column_ref(&mut self, c: &mut crate::expr::ColumnRef) {
        if let Some(t) = &mut c.table {
            self.table_name(t);
        }
        self.column_name(&mut c.column);
    }
    /// Every literal leaf expression.
    fn literal(&mut self, _expr: &mut Expr) {}
}

pub fn walk_expr_mut(expr: &mut Expr, v: &mut dyn MutVisitor) {
    match expr {
        Expr::Null | Expr::Bool(_) | Expr::Integer(_) | Expr::Float(_) | Expr::Str(_) => {
            v.literal(expr)
        }
        Expr::Column(c) => v.column_ref(c),
        Expr::Unary(_, e) => walk_expr_mut(e, v),
        Expr::Binary(l, _, r) => {
            walk_expr_mut(l, v);
            walk_expr_mut(r, v);
        }
        Expr::Like { expr, pattern, .. } => {
            walk_expr_mut(expr, v);
            walk_expr_mut(pattern, v);
        }
        Expr::InList { expr, list, .. } => {
            walk_expr_mut(expr, v);
            list.iter_mut().for_each(|e| walk_expr_mut(e, v));
        }
        Expr::Between { expr, low, high, .. } => {
            walk_expr_mut(expr, v);
            walk_expr_mut(low, v);
            walk_expr_mut(high, v);
        }
        Expr::IsNull { expr, .. } => walk_expr_mut(expr, v),
        Expr::Case { operand, whens, else_ } => {
            if let Some(o) = operand {
                walk_expr_mut(o, v);
            }
            for (w, t) in whens {
                walk_expr_mut(w, v);
                walk_expr_mut(t, v);
            }
            if let Some(e) = else_ {
                walk_expr_mut(e, v);
            }
        }
        Expr::Func(c) => c.args.iter_mut().for_each(|e| walk_expr_mut(e, v)),
        Expr::Window { func, spec } => {
            func.args.iter_mut().for_each(|e| walk_expr_mut(e, v));
            spec.partition_by.iter_mut().for_each(|e| walk_expr_mut(e, v));
            spec.order_by.iter_mut().for_each(|o| walk_expr_mut(&mut o.expr, v));
            if let Some(fr) = &mut spec.frame {
                if let crate::expr::FrameBound::Preceding(e)
                | crate::expr::FrameBound::Following(e) = &mut fr.start
                {
                    walk_expr_mut(e, v);
                }
                if let Some(
                    crate::expr::FrameBound::Preceding(e) | crate::expr::FrameBound::Following(e),
                ) = &mut fr.end
                {
                    walk_expr_mut(e, v);
                }
            }
        }
        Expr::Cast { expr, .. } => walk_expr_mut(expr, v),
        Expr::Subquery(q) => walk_query_mut(q, v),
        Expr::Exists { query, .. } => walk_query_mut(query, v),
    }
}

pub fn walk_query_mut(q: &mut Query, v: &mut dyn MutVisitor) {
    walk_set_expr_mut(&mut q.body, v);
    q.order_by.iter_mut().for_each(|o| walk_expr_mut(&mut o.expr, v));
    if let Some(l) = &mut q.limit {
        walk_expr_mut(l, v);
    }
    if let Some(o) = &mut q.offset {
        walk_expr_mut(o, v);
    }
}

fn walk_set_expr_mut(s: &mut SetExpr, v: &mut dyn MutVisitor) {
    match s {
        SetExpr::Select(sel) => walk_select_mut(sel, v),
        SetExpr::SetOp { left, right, .. } => {
            walk_set_expr_mut(left, v);
            walk_set_expr_mut(right, v);
        }
        SetExpr::Values(rows) => {
            rows.iter_mut().for_each(|r| r.iter_mut().for_each(|e| walk_expr_mut(e, v)))
        }
    }
}

fn walk_select_mut(sel: &mut Select, v: &mut dyn MutVisitor) {
    for item in &mut sel.projection {
        match item {
            SelectItem::Star => {}
            SelectItem::QualifiedStar(t) => v.table_name(t),
            SelectItem::Expr { expr, .. } => walk_expr_mut(expr, v),
        }
    }
    sel.from.iter_mut().for_each(|t| walk_table_ref_mut(t, v));
    if let Some(w) = &mut sel.where_ {
        walk_expr_mut(w, v);
    }
    sel.group_by.iter_mut().for_each(|e| walk_expr_mut(e, v));
    if let Some(h) = &mut sel.having {
        walk_expr_mut(h, v);
    }
}

fn walk_table_ref_mut(t: &mut TableRef, v: &mut dyn MutVisitor) {
    match t {
        TableRef::Named { name, .. } => v.table_name(name),
        TableRef::Join { left, right, on, .. } => {
            walk_table_ref_mut(left, v);
            walk_table_ref_mut(right, v);
            if let Some(on) = on {
                walk_expr_mut(on, v);
            }
        }
        TableRef::Subquery { query, .. } => walk_query_mut(query, v),
    }
}

/// Walk every name/literal position of a statement.
pub fn walk_statement_mut(stmt: &mut Statement, v: &mut dyn MutVisitor) {
    match stmt {
        Statement::CreateTable(c) => {
            v.table_name(&mut c.name);
            for col in &mut c.columns {
                v.column_name(&mut col.name);
                for con in &mut col.constraints {
                    match con {
                        ColumnConstraint::Default(e) | ColumnConstraint::Check(e) => {
                            walk_expr_mut(e, v)
                        }
                        ColumnConstraint::References { table, column } => {
                            v.table_name(table);
                            if let Some(c) = column {
                                v.column_name(c);
                            }
                        }
                        _ => {}
                    }
                }
            }
            for con in &mut c.constraints {
                match con {
                    TableConstraint::PrimaryKey(cols) | TableConstraint::Unique(cols) => {
                        cols.iter_mut().for_each(|c| v.column_name(c))
                    }
                    TableConstraint::Check(e) => walk_expr_mut(e, v),
                    TableConstraint::ForeignKey { columns, ref_table, ref_columns } => {
                        columns.iter_mut().for_each(|c| v.column_name(c));
                        v.table_name(ref_table);
                        ref_columns.iter_mut().for_each(|c| v.column_name(c));
                    }
                }
            }
        }
        Statement::CreateView(c) => {
            v.table_name(&mut c.name);
            walk_query_mut(&mut c.query, v);
        }
        Statement::CreateIndex(c) => {
            v.table_name(&mut c.table);
            c.columns.iter_mut().for_each(|c| v.column_name(c));
        }
        Statement::CreateTrigger(c) => {
            v.table_name(&mut c.table);
            walk_statement_mut(&mut c.action, v);
        }
        Statement::CreateRule(c) => {
            v.table_name(&mut c.table);
            if let Some(a) = &mut c.action {
                walk_statement_mut(a, v);
            }
        }
        Statement::CreateTableAs { name, query } => {
            v.table_name(name);
            walk_query_mut(query, v);
        }
        Statement::AlterTable(a) => {
            v.table_name(&mut a.name);
            match &mut a.action {
                AlterTableAction::AddColumn(c) => v.column_name(&mut c.name),
                AlterTableAction::DropColumn(c) => v.column_name(c),
                AlterTableAction::RenameColumn { old, new } => {
                    v.column_name(old);
                    v.column_name(new);
                }
                AlterTableAction::RenameTo(n) => v.table_name(n),
                AlterTableAction::AlterColumnType { name, .. } => v.column_name(name),
            }
        }
        Statement::Drop(d) => {
            if matches!(
                d.object,
                crate::kind::ObjectKind::Table
                    | crate::kind::ObjectKind::View
                    | crate::kind::ObjectKind::MaterializedView
            ) {
                v.table_name(&mut d.name);
            }
            if let Some(t) = &mut d.on_table {
                v.table_name(t);
            }
        }
        Statement::GenericDdl(_) => {}
        Statement::Select(s) => walk_query_mut(&mut s.query, v),
        Statement::Insert(i) => {
            v.table_name(&mut i.table);
            i.columns.iter_mut().for_each(|c| v.column_name(c));
            match &mut i.source {
                InsertSource::Values(rows) => {
                    rows.iter_mut().for_each(|r| r.iter_mut().for_each(|e| walk_expr_mut(e, v)))
                }
                InsertSource::Query(q) => walk_query_mut(q, v),
                InsertSource::DefaultValues => {}
            }
        }
        Statement::Update(u) => {
            v.table_name(&mut u.table);
            for (c, e) in &mut u.assignments {
                v.column_name(c);
                walk_expr_mut(e, v);
            }
            if let Some(w) = &mut u.where_ {
                walk_expr_mut(w, v);
            }
        }
        Statement::Delete(d) => {
            v.table_name(&mut d.table);
            if let Some(w) = &mut d.where_ {
                walk_expr_mut(w, v);
            }
        }
        Statement::With(w) => {
            for cte in &mut w.ctes {
                match &mut cte.body {
                    CteBody::Query(q) => walk_query_mut(q, v),
                    CteBody::Dml(s) => walk_statement_mut(s, v),
                }
            }
            walk_statement_mut(&mut w.body, v);
        }
        Statement::Values(rows) => {
            rows.iter_mut().for_each(|r| r.iter_mut().for_each(|e| walk_expr_mut(e, v)))
        }
        Statement::Truncate { table } => v.table_name(table),
        Statement::Copy(c) => match &mut c.source {
            CopySource::Table { name, columns } => {
                v.table_name(name);
                columns.iter_mut().for_each(|c| v.column_name(c));
            }
            CopySource::Query(q) => walk_query_mut(q, v),
        },
        Statement::Grant(g) | Statement::Revoke(g) => v.table_name(&mut g.object),
        Statement::LockTable { table, .. } => v.table_name(table),
        Statement::Analyze(Some(t)) | Statement::Vacuum { table: Some(t), .. } => v.table_name(t),
        Statement::Cluster(Some(t)) | Statement::Reindex(Some(t)) => v.table_name(t),
        Statement::Explain(inner) => walk_statement_mut(inner, v),
        Statement::RefreshMatView(n) => v.table_name(n),
        Statement::Call { args, .. } => args.iter_mut().for_each(|e| walk_expr_mut(e, v)),
        _ => {}
    }
}

// ---------------------------------------------------------------------------
// Read-only structural queries (built on the mutable walker via collectors)
// ---------------------------------------------------------------------------

struct Collector {
    tables: Vec<String>,
    columns: Vec<String>,
    literal_count: usize,
}

impl MutVisitor for Collector {
    fn table_name(&mut self, name: &mut String) {
        self.tables.push(name.clone());
    }
    fn column_name(&mut self, name: &mut String) {
        self.columns.push(name.clone());
    }
    fn literal(&mut self, _expr: &mut Expr) {
        self.literal_count += 1;
    }
}

/// All table names mentioned by the statement (definitions and references).
pub fn table_names(stmt: &Statement) -> Vec<String> {
    let mut c = Collector { tables: vec![], columns: vec![], literal_count: 0 };
    let mut s = stmt.clone();
    walk_statement_mut(&mut s, &mut c);
    c.tables
}

/// All column names mentioned by the statement.
pub fn column_names(stmt: &Statement) -> Vec<String> {
    let mut c = Collector { tables: vec![], columns: vec![], literal_count: 0 };
    let mut s = stmt.clone();
    walk_statement_mut(&mut s, &mut c);
    c.columns
}

/// Number of literal leaves (a size proxy used by mutators).
pub fn literal_count(stmt: &Statement) -> usize {
    let mut c = Collector { tables: vec![], columns: vec![], literal_count: 0 };
    let mut s = stmt.clone();
    walk_statement_mut(&mut s, &mut c);
    c.literal_count
}

/// Does the statement contain a window function anywhere?
pub fn has_window_function(stmt: &Statement) -> bool {
    // The MutVisitor has no hook for non-literal expressions, so walk the
    // tree manually.
    fn expr_has_window(e: &Expr) -> bool {
        match e {
            Expr::Window { .. } => true,
            Expr::Unary(_, e) | Expr::IsNull { expr: e, .. } | Expr::Cast { expr: e, .. } => {
                expr_has_window(e)
            }
            Expr::Binary(l, _, r) => expr_has_window(l) || expr_has_window(r),
            Expr::Like { expr, pattern, .. } => expr_has_window(expr) || expr_has_window(pattern),
            Expr::InList { expr, list, .. } => {
                expr_has_window(expr) || list.iter().any(expr_has_window)
            }
            Expr::Between { expr, low, high, .. } => {
                expr_has_window(expr) || expr_has_window(low) || expr_has_window(high)
            }
            Expr::Case { operand, whens, else_ } => {
                operand.as_deref().map(expr_has_window).unwrap_or(false)
                    || whens.iter().any(|(w, t)| expr_has_window(w) || expr_has_window(t))
                    || else_.as_deref().map(expr_has_window).unwrap_or(false)
            }
            Expr::Func(c) => c.args.iter().any(expr_has_window),
            Expr::Subquery(q) | Expr::Exists { query: q, .. } => query_has_window(q),
            _ => false,
        }
    }
    fn query_has_window(q: &Query) -> bool {
        fn set_has(s: &SetExpr) -> bool {
            match s {
                SetExpr::Select(sel) => {
                    sel.projection.iter().any(|i| match i {
                        SelectItem::Expr { expr, .. } => expr_has_window(expr),
                        _ => false,
                    }) || sel.where_.as_ref().map(expr_has_window).unwrap_or(false)
                        || sel.group_by.iter().any(expr_has_window)
                        || sel.having.as_ref().map(expr_has_window).unwrap_or(false)
                        || sel.from.iter().any(|t| match t {
                            TableRef::Subquery { query, .. } => query_has_window(query),
                            _ => false,
                        })
                }
                SetExpr::SetOp { left, right, .. } => set_has(left) || set_has(right),
                SetExpr::Values(rows) => rows.iter().flatten().any(expr_has_window),
            }
        }
        set_has(&q.body) || q.order_by.iter().any(|o| expr_has_window(&o.expr))
    }
    match stmt {
        Statement::Select(s) => query_has_window(&s.query),
        Statement::CreateView(v) => query_has_window(&v.query),
        Statement::CreateTableAs { query, .. } => query_has_window(query),
        Statement::Insert(Insert { source: InsertSource::Query(q), .. }) => query_has_window(q),
        Statement::With(w) => {
            w.ctes.iter().any(|c| match &c.body {
                CteBody::Query(q) => query_has_window(q),
                CteBody::Dml(s) => has_window_function(s),
            }) || has_window_function(&w.body)
        }
        Statement::Copy(CopyStmt { source: CopySource::Query(q), .. }) => query_has_window(q),
        Statement::CreateTrigger(t) => has_window_function(&t.action),
        Statement::Explain(s) => has_window_function(s),
        _ => false,
    }
}

/// Does the statement contain a GROUP BY anywhere (top-level query only)?
pub fn has_group_by(stmt: &Statement) -> bool {
    fn query_has(q: &Query) -> bool {
        fn set_has(s: &SetExpr) -> bool {
            match s {
                SetExpr::Select(sel) => !sel.group_by.is_empty(),
                SetExpr::SetOp { left, right, .. } => set_has(left) || set_has(right),
                SetExpr::Values(_) => false,
            }
        }
        set_has(&q.body)
    }
    match stmt {
        Statement::Select(s) => query_has(&s.query),
        Statement::CreateView(v) => query_has(&v.query),
        Statement::CreateTableAs { query, .. } => query_has(query),
        Statement::With(w) => {
            w.ctes.iter().any(|c| match &c.body {
                CteBody::Query(q) => query_has(q),
                CteBody::Dml(s) => has_group_by(s),
            }) || has_group_by(&w.body)
        }
        Statement::Copy(CopyStmt { source: CopySource::Query(q), .. }) => query_has(q),
        Statement::CreateTrigger(t) => has_group_by(&t.action),
        Statement::Insert(Insert { source: InsertSource::Query(q), .. }) => query_has(q),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{DataType, FuncCall, WindowSpec};

    fn select_t1() -> Statement {
        Statement::Select(SelectStmt {
            query: Box::new(Query::star_from("t1")),
            variant: SelectVariant::Plain,
        })
    }

    #[test]
    fn table_names_of_select() {
        assert_eq!(table_names(&select_t1()), vec!["t1".to_string()]);
    }

    #[test]
    fn table_names_of_create_table_with_fk() {
        let c = Statement::CreateTable(CreateTable {
            name: "child".into(),
            temporary: false,
            if_not_exists: false,
            columns: vec![ColumnDef {
                name: "pid".into(),
                ty: DataType::Int,
                constraints: vec![ColumnConstraint::References {
                    table: "parent".into(),
                    column: None,
                }],
            }],
            constraints: vec![],
        });
        let t = table_names(&c);
        assert!(t.contains(&"child".to_string()));
        assert!(t.contains(&"parent".to_string()));
    }

    #[test]
    fn literal_count_counts_leaves() {
        let i = Statement::Insert(Insert {
            table: "t".into(),
            columns: vec![],
            source: InsertSource::Values(vec![vec![Expr::int(1), Expr::str("x"), Expr::Null]]),
            ignore: false,
            replace: false,
            low_priority: false,
        });
        assert_eq!(literal_count(&i), 3);
    }

    #[test]
    fn window_detection() {
        let mut q = Query::star_from("t1");
        assert!(!has_window_function(&Statement::Select(SelectStmt {
            query: Box::new(q.clone()),
            variant: SelectVariant::Plain
        })));
        if let SetExpr::Select(sel) = &mut q.body {
            sel.projection = vec![SelectItem::Expr {
                expr: Expr::Window { func: FuncCall::star("RANK"), spec: WindowSpec::default() },
                alias: None,
            }];
        }
        assert!(has_window_function(&Statement::Select(SelectStmt {
            query: Box::new(q),
            variant: SelectVariant::Plain
        })));
    }

    #[test]
    fn group_by_detection_through_trigger_action() {
        let mut q = Query::star_from("t2");
        if let SetExpr::Select(sel) = &mut q.body {
            sel.group_by = vec![Expr::col("full_name")];
        }
        let trig = Statement::CreateTrigger(CreateTrigger {
            name: "v0".into(),
            timing: TriggerTiming::After,
            event: DmlEvent::Update,
            table: "t2".into(),
            for_each_row: true,
            action: Box::new(Statement::Insert(Insert {
                table: "t2".into(),
                columns: vec![],
                source: InsertSource::Query(Box::new(q)),
                ignore: false,
                replace: false,
                low_priority: false,
            })),
        });
        assert!(has_group_by(&trig));
    }

    #[test]
    fn mut_visitor_can_rename_tables() {
        struct Renamer;
        impl MutVisitor for Renamer {
            fn table_name(&mut self, name: &mut String) {
                *name = "renamed".into();
            }
        }
        let mut s = select_t1();
        walk_statement_mut(&mut s, &mut Renamer);
        assert_eq!(table_names(&s), vec!["renamed".to_string()]);
    }
}
