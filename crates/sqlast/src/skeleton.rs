//! Statement skeletons for the AST library (paper § III-B, instantiation).
//!
//! "When finding a new seed, LEGO parses each of its statements to extract
//! AST structures and saves them into the global library." A *skeleton* is a
//! statement with identifiers replaced by canonical placeholders and literals
//! left in place as typed holes; skeletons with the same structure deduplicate
//! via [`structure_key`]. The instantiator later *rebinds* a skeleton against
//! the current schema and refills the literal holes.

use crate::ast::Statement;
use crate::expr::Expr;
use crate::visit::{walk_statement_mut, MutVisitor};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Replace identifiers with canonical `$tN` / `$cN` placeholders, preserving
/// repetition structure (the same original name maps to the same placeholder).
pub fn normalize(stmt: &Statement) -> Statement {
    struct Normalizer {
        tables: HashMap<String, String>,
        columns: HashMap<String, String>,
    }
    impl Normalizer {
        fn canon(map: &mut HashMap<String, String>, prefix: &str, name: &mut String) {
            let next = map.len();
            match map.entry(name.clone()) {
                Entry::Occupied(e) => *name = e.get().clone(),
                Entry::Vacant(e) => {
                    let c = format!("{}{}", prefix, next);
                    e.insert(c.clone());
                    *name = c;
                }
            }
        }
    }
    impl MutVisitor for Normalizer {
        fn table_name(&mut self, name: &mut String) {
            Self::canon(&mut self.tables, "$t", name);
        }
        fn column_name(&mut self, name: &mut String) {
            Self::canon(&mut self.columns, "$c", name);
        }
        fn literal(&mut self, expr: &mut Expr) {
            // Normalize literal *values* but keep their type, so two inserts
            // differing only in data share a skeleton.
            match expr {
                Expr::Integer(v) => *v = 0,
                Expr::Float(v) => *v = 0.0,
                Expr::Str(s) => *s = "$s".into(),
                Expr::Bool(b) => *b = true,
                _ => {}
            }
        }
    }
    let mut s = stmt.clone();
    walk_statement_mut(&mut s, &mut Normalizer { tables: HashMap::new(), columns: HashMap::new() });
    s
}

/// A stable structural fingerprint: equal iff the normalized statements
/// render identically. Used to keep the AST library free of duplicates
/// ("instantiates sequences into test cases with non-repetitive structures").
pub fn structure_key(stmt: &Statement) -> u64 {
    let text = normalize(stmt).to_string();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A [`MutVisitor`] that rebinds identifiers/literals through caller-supplied
/// closures — the instantiator's workhorse.
pub struct Rebinder<T, C, L>
where
    T: FnMut(&mut String),
    C: FnMut(&mut String),
    L: FnMut(&mut Expr),
{
    pub on_table: T,
    pub on_column: C,
    pub on_literal: L,
}

impl<T, C, L> MutVisitor for Rebinder<T, C, L>
where
    T: FnMut(&mut String),
    C: FnMut(&mut String),
    L: FnMut(&mut Expr),
{
    fn table_name(&mut self, name: &mut String) {
        (self.on_table)(name)
    }
    fn column_name(&mut self, name: &mut String) {
        (self.on_column)(name)
    }
    fn literal(&mut self, expr: &mut Expr) {
        (self.on_literal)(expr)
    }
}

/// Apply a rebinder to a statement in place.
pub fn rebind<T, C, L>(stmt: &mut Statement, on_table: T, on_column: C, on_literal: L)
where
    T: FnMut(&mut String),
    C: FnMut(&mut String),
    L: FnMut(&mut Expr),
{
    walk_statement_mut(stmt, &mut Rebinder { on_table, on_column, on_literal });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;
    use crate::expr::Expr;

    fn insert(table: &str, v: i64) -> Statement {
        Statement::Insert(Insert {
            table: table.into(),
            columns: vec![],
            source: InsertSource::Values(vec![vec![Expr::int(v)]]),
            ignore: false,
            replace: false,
            low_priority: false,
        })
    }

    #[test]
    fn normalize_canonicalizes_tables() {
        let s = normalize(&insert("orders", 42));
        assert_eq!(s.to_string(), "INSERT INTO $t0 VALUES (0)");
    }

    #[test]
    fn same_structure_same_key() {
        assert_eq!(structure_key(&insert("a", 1)), structure_key(&insert("b", 999)));
    }

    #[test]
    fn different_structure_different_key() {
        let one = insert("a", 1);
        let two = Statement::Insert(Insert {
            table: "a".into(),
            columns: vec!["x".into()],
            source: InsertSource::Values(vec![vec![Expr::int(1)]]),
            ignore: false,
            replace: false,
            low_priority: false,
        });
        assert_ne!(structure_key(&one), structure_key(&two));
    }

    #[test]
    fn repeated_names_share_placeholder() {
        // SELECT with a self-join on the same table must map both mentions to
        // the same placeholder.
        let q = Query::select(Select {
            distinct: false,
            projection: vec![SelectItem::Star],
            from: vec![TableRef::named("t9"), TableRef::named("t9")],
            where_: None,
            group_by: vec![],
            having: None,
        });
        let s = Statement::Select(SelectStmt { query: Box::new(q), variant: SelectVariant::Plain });
        assert_eq!(normalize(&s).to_string(), "SELECT * FROM $t0, $t0");
    }

    #[test]
    fn rebind_replaces_everything() {
        let mut s = insert("old", 7);
        rebind(&mut s, |t| *t = "new".into(), |_c| {}, |l| *l = Expr::int(99));
        assert_eq!(s.to_string(), "INSERT INTO new VALUES (99)");
    }
}
