#![forbid(unsafe_code)]

//! SQL abstract syntax for the LEGO reproduction.
//!
//! The paper's central abstraction is the *SQL Type Sequence*: the sequence of
//! statement *types* (e.g. `CREATE TABLE → INSERT → SELECT`) of a test case.
//! This crate provides:
//!
//! * [`StmtKind`] — the statement-type inventory (DDL verb × object kind plus
//!   standalone kinds), with [`StmtCategory`] classification,
//! * [`Dialect`] — the four evaluated DBMS profiles with statement-type
//!   inventories sized like the paper's Table IV (188/158/160/24),
//! * the AST itself ([`Statement`], [`Query`], [`Expr`], …) with SQL
//!   rendering via `Display`,
//! * structural utilities used by the fuzzer's instantiator
//!   ([`skeleton`]): identifier rebinding and literal refilling.

pub mod ast;
pub mod dialect;
pub mod expr;
pub mod kind;
pub mod rewrite;
pub mod skeleton;
pub mod visit;

pub use ast::*;
pub use dialect::Dialect;
pub use expr::*;
pub use kind::{DdlVerb, ObjectKind, StmtCategory, StmtKind};

/// Commonly used items.
pub mod prelude {
    pub use crate::ast::{Query, Statement};
    pub use crate::dialect::Dialect;
    pub use crate::expr::Expr;
    pub use crate::kind::{StmtCategory, StmtKind};
}

/// A parsed test case: an ordered sequence of SQL statements.
///
/// The paper (Fig. 1): "a test case is an input for a DBMS, and it always
/// consists of a sequence of SQL statements."
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TestCase {
    pub statements: Vec<Statement>,
}

impl TestCase {
    pub fn new(statements: Vec<Statement>) -> Self {
        Self { statements }
    }

    /// The SQL Type Sequence of this test case (paper § II, Definition).
    pub fn type_sequence(&self) -> Vec<StmtKind> {
        self.statements.iter().map(|s| s.kind()).collect()
    }

    pub fn len(&self) -> usize {
        self.statements.len()
    }

    pub fn is_empty(&self) -> bool {
        self.statements.is_empty()
    }

    /// Render back to executable SQL text, one statement per line.
    pub fn to_sql(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for s in &self.statements {
            let _ = writeln!(out, "{};", s);
        }
        out
    }
}

impl std::fmt::Display for TestCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_sql())
    }
}
