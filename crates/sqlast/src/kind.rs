//! The statement-type inventory.
//!
//! The paper (§ II): "a statement type defines one certain kind of specific
//! operation on a certain type of object. For example, CREATE TABLE and
//! CREATE VIEW are two types." We model a type either as a (DDL verb, object
//! kind) pair or as a standalone kind (SELECT, NOTIFY, COPY, …).

use serde::{Deserialize, Serialize};
use std::fmt;

/// DDL verbs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DdlVerb {
    Create,
    Alter,
    Drop,
}

impl DdlVerb {
    pub const ALL: [DdlVerb; 3] = [DdlVerb::Create, DdlVerb::Alter, DdlVerb::Drop];

    pub fn keyword(self) -> &'static str {
        match self {
            DdlVerb::Create => "CREATE",
            DdlVerb::Alter => "ALTER",
            DdlVerb::Drop => "DROP",
        }
    }
}

macro_rules! object_kinds {
    ($( $variant:ident => $name:literal ),+ $(,)?) => {
        /// Kinds of schema objects a DDL statement can target.
        #[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
        pub enum ObjectKind {
            $( $variant, )+
        }

        impl ObjectKind {
            pub const ALL: &'static [ObjectKind] = &[ $( ObjectKind::$variant, )+ ];

            /// The SQL keyword(s) naming this object kind.
            pub fn keyword(self) -> &'static str {
                match self {
                    $( ObjectKind::$variant => $name, )+
                }
            }
        }
    };
}

object_kinds! {
    AccessMethod => "ACCESS METHOD",
    Aggregate => "AGGREGATE",
    Cast => "CAST",
    Collation => "COLLATION",
    Conversion => "CONVERSION",
    Database => "DATABASE",
    Domain => "DOMAIN",
    Event => "EVENT",
    EventTrigger => "EVENT TRIGGER",
    Extension => "EXTENSION",
    ForeignDataWrapper => "FOREIGN DATA WRAPPER",
    ForeignTable => "FOREIGN TABLE",
    Function => "FUNCTION",
    Group => "GROUP",
    Index => "INDEX",
    Language => "LANGUAGE",
    LogfileGroup => "LOGFILE GROUP",
    MaterializedView => "MATERIALIZED VIEW",
    Operator => "OPERATOR",
    OperatorClass => "OPERATOR CLASS",
    OperatorFamily => "OPERATOR FAMILY",
    Package => "PACKAGE",
    Policy => "POLICY",
    Procedure => "PROCEDURE",
    Publication => "PUBLICATION",
    Role => "ROLE",
    Rule => "RULE",
    Schema => "SCHEMA",
    Sequence => "SEQUENCE",
    Server => "SERVER",
    SpatialReferenceSystem => "SPATIAL REFERENCE SYSTEM",
    Statistics => "STATISTICS",
    Subscription => "SUBSCRIPTION",
    Table => "TABLE",
    Tablespace => "TABLESPACE",
    TextSearchConfiguration => "TEXT SEARCH CONFIGURATION",
    TextSearchDictionary => "TEXT SEARCH DICTIONARY",
    TextSearchParser => "TEXT SEARCH PARSER",
    TextSearchTemplate => "TEXT SEARCH TEMPLATE",
    Transform => "TRANSFORM",
    Trigger => "TRIGGER",
    Type => "TYPE",
    User => "USER",
    UserMapping => "USER MAPPING",
    View => "VIEW",
    ResourceGroup => "RESOURCE GROUP",
    Routine => "ROUTINE",
}

macro_rules! standalone_kinds {
    ($( $variant:ident => ($name:literal, $cat:ident) ),+ $(,)?) => {
        /// Statement kinds that are not (verb, object) DDL pairs.
        #[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
        pub enum StandaloneKind {
            $( $variant, )+
        }

        impl StandaloneKind {
            pub const ALL: &'static [StandaloneKind] = &[ $( StandaloneKind::$variant, )+ ];

            pub fn name(self) -> &'static str {
                match self {
                    $( StandaloneKind::$variant => $name, )+
                }
            }

            pub fn category(self) -> StmtCategory {
                match self {
                    $( StandaloneKind::$variant => StmtCategory::$cat, )+
                }
            }
        }
    };
}

standalone_kinds! {
    // Query & manipulation
    Select => ("SELECT", Dql),
    SelectInto => ("SELECT INTO", Dql),
    SelectV => ("SELECTV", Dql),
    Values => ("VALUES", Dql),
    Insert => ("INSERT", Dml),
    Replace => ("REPLACE", Dml),
    Update => ("UPDATE", Dml),
    Delete => ("DELETE", Dml),
    Merge => ("MERGE", Dml),
    With => ("WITH", Dml),
    Truncate => ("TRUNCATE", Dml),
    Copy => ("COPY", Dml),
    LoadData => ("LOAD DATA", Dml),
    LoadXml => ("LOAD XML", Dml),
    ImportForeignSchema => ("IMPORT FOREIGN SCHEMA", Ddl),
    CreateTableAs => ("CREATE TABLE AS", Ddl),
    RenameTable => ("RENAME TABLE", Ddl),
    // Access control
    Grant => ("GRANT", Dcl),
    Revoke => ("REVOKE", Dcl),
    ReassignOwned => ("REASSIGN OWNED", Dcl),
    DropOwned => ("DROP OWNED", Dcl),
    AlterDefaultPrivileges => ("ALTER DEFAULT PRIVILEGES", Dcl),
    RenameUser => ("RENAME USER", Dcl),
    SetPassword => ("SET PASSWORD", Dcl),
    SetRole => ("SET ROLE", Dcl),
    SetSessionAuthorization => ("SET SESSION AUTHORIZATION", Dcl),
    // Transactions
    Begin => ("BEGIN", Tcl),
    StartTransaction => ("START TRANSACTION", Tcl),
    Commit => ("COMMIT", Tcl),
    End => ("END", Tcl),
    Rollback => ("ROLLBACK", Tcl),
    Abort => ("ABORT", Tcl),
    Savepoint => ("SAVEPOINT", Tcl),
    ReleaseSavepoint => ("RELEASE SAVEPOINT", Tcl),
    RollbackToSavepoint => ("ROLLBACK TO SAVEPOINT", Tcl),
    PrepareTransaction => ("PREPARE TRANSACTION", Tcl),
    CommitPrepared => ("COMMIT PREPARED", Tcl),
    RollbackPrepared => ("ROLLBACK PREPARED", Tcl),
    SetTransaction => ("SET TRANSACTION", Tcl),
    SetConstraints => ("SET CONSTRAINTS", Tcl),
    XaBegin => ("XA BEGIN", Tcl),
    XaCommit => ("XA COMMIT", Tcl),
    XaRollback => ("XA ROLLBACK", Tcl),
    LockTable => ("LOCK", Tcl),
    LockTables => ("LOCK TABLES", Tcl),
    UnlockTables => ("UNLOCK TABLES", Tcl),
    // Session / configuration
    Set => ("SET", Util),
    Reset => ("RESET", Util),
    Show => ("SHOW", Util),
    Use => ("USE", Util),
    Pragma => ("PRAGMA", Util),
    AlterSystem => ("ALTER SYSTEM", Util),
    Discard => ("DISCARD", Util),
    // Maintenance & introspection
    Analyze => ("ANALYZE", Util),
    Vacuum => ("VACUUM", Util),
    Explain => ("EXPLAIN", Util),
    Describe => ("DESCRIBE", Util),
    Cluster => ("CLUSTER", Util),
    Reindex => ("REINDEX", Util),
    Rebuild => ("REBUILD", Util),
    Checkpoint => ("CHECKPOINT", Util),
    Comment => ("COMMENT", Util),
    SecurityLabel => ("SECURITY LABEL", Util),
    RefreshMaterializedView => ("REFRESH MATERIALIZED VIEW", Util),
    CheckTable => ("CHECK TABLE", Util),
    ChecksumTable => ("CHECKSUM TABLE", Util),
    OptimizeTable => ("OPTIMIZE TABLE", Util),
    RepairTable => ("REPAIR TABLE", Util),
    // Async messaging (PostgreSQL)
    Listen => ("LISTEN", Util),
    Notify => ("NOTIFY", Util),
    Unlisten => ("UNLISTEN", Util),
    // Prepared statements & cursors
    PrepareStmt => ("PREPARE", Util),
    ExecuteStmt => ("EXECUTE", Util),
    Deallocate => ("DEALLOCATE", Util),
    DeclareCursor => ("DECLARE", Util),
    Fetch => ("FETCH", Util),
    Move => ("MOVE", Util),
    CloseCursor => ("CLOSE", Util),
    Handler => ("HANDLER", Util),
    // Procedural
    Call => ("CALL", Util),
    Do => ("DO", Util),
    ExecProcedure => ("EXEC PROCEDURE", Util),
    // Server administration (MySQL family)
    FlushStmt => ("FLUSH", Util),
    KillStmt => ("KILL", Util),
    ResetMaster => ("RESET MASTER", Util),
    ResetSlave => ("RESET SLAVE", Util),
    PurgeBinaryLogs => ("PURGE BINARY LOGS", Util),
    ChangeMaster => ("CHANGE MASTER", Util),
    StartSlave => ("START SLAVE", Util),
    StopSlave => ("STOP SLAVE", Util),
    Binlog => ("BINLOG", Util),
    InstallPlugin => ("INSTALL PLUGIN", Util),
    UninstallPlugin => ("UNINSTALL PLUGIN", Util),
    CacheIndex => ("CACHE INDEX", Util),
    LoadIndexIntoCache => ("LOAD INDEX INTO CACHE", Util),
    Load => ("LOAD", Util),
    Shutdown => ("SHUTDOWN", Util),
    HelpStmt => ("HELP", Util),
    // Diagnostics / signals (MySQL family)
    Signal => ("SIGNAL", Util),
    Resignal => ("RESIGNAL", Util),
    GetDiagnostics => ("GET DIAGNOSTICS", Util),
    // Comdb2 specific
    Put => ("PUT", Util),
    BulkImport => ("BULKIMPORT", Util),
    // MySQL-family SHOW variants: the paper counts statement types as
    // "operation on a certain type of object", so each SHOW form is a type.
    ShowBinaryLogs => ("SHOW BINARY LOGS", Util),
    ShowBinlogEvents => ("SHOW BINLOG EVENTS", Util),
    ShowCharacterSet => ("SHOW CHARACTER SET", Util),
    ShowCollation => ("SHOW COLLATION", Util),
    ShowColumns => ("SHOW COLUMNS", Util),
    ShowCreateDatabase => ("SHOW CREATE DATABASE", Util),
    ShowCreateEvent => ("SHOW CREATE EVENT", Util),
    ShowCreateFunction => ("SHOW CREATE FUNCTION", Util),
    ShowCreateProcedure => ("SHOW CREATE PROCEDURE", Util),
    ShowCreateTable => ("SHOW CREATE TABLE", Util),
    ShowCreateTrigger => ("SHOW CREATE TRIGGER", Util),
    ShowCreateUser => ("SHOW CREATE USER", Util),
    ShowCreateView => ("SHOW CREATE VIEW", Util),
    ShowDatabases => ("SHOW DATABASES", Util),
    ShowEngine => ("SHOW ENGINE", Util),
    ShowEngines => ("SHOW ENGINES", Util),
    ShowErrors => ("SHOW ERRORS", Util),
    ShowEvents => ("SHOW EVENTS", Util),
    ShowFunctionStatus => ("SHOW FUNCTION STATUS", Util),
    ShowGrants => ("SHOW GRANTS", Util),
    ShowIndex => ("SHOW INDEX", Util),
    ShowMasterStatus => ("SHOW MASTER STATUS", Util),
    ShowOpenTables => ("SHOW OPEN TABLES", Util),
    ShowPlugins => ("SHOW PLUGINS", Util),
    ShowPrivileges => ("SHOW PRIVILEGES", Util),
    ShowProcedureStatus => ("SHOW PROCEDURE STATUS", Util),
    ShowProcesslist => ("SHOW PROCESSLIST", Util),
    ShowProfile => ("SHOW PROFILE", Util),
    ShowProfiles => ("SHOW PROFILES", Util),
    ShowRelaylogEvents => ("SHOW RELAYLOG EVENTS", Util),
    ShowSlaveHosts => ("SHOW SLAVE HOSTS", Util),
    ShowSlaveStatus => ("SHOW SLAVE STATUS", Util),
    ShowStatus => ("SHOW STATUS", Util),
    ShowTableStatus => ("SHOW TABLE STATUS", Util),
    ShowTables => ("SHOW TABLES", Util),
    ShowTriggers => ("SHOW TRIGGERS", Util),
    ShowVariables => ("SHOW VARIABLES", Util),
    ShowWarnings => ("SHOW WARNINGS", Util),
    // Misc MySQL 8 / MariaDB statements needed for inventory parity
    SetNames => ("SET NAMES", Util),
    SetCharacterSet => ("SET CHARACTER SET", Util),
    SetDefaultRole => ("SET DEFAULT ROLE", Dcl),
    SetResourceGroup => ("SET RESOURCE GROUP", Util),
    TableStmt => ("TABLE", Dql),
    ChangeReplicationFilter => ("CHANGE REPLICATION FILTER", Util),
    ResetPersist => ("RESET PERSIST", Util),
    Restart => ("RESTART", Util),
    CloneStmt => ("CLONE", Util),
    ImportTable => ("IMPORT TABLE", Util),
    ExecuteImmediate => ("EXECUTE IMMEDIATE", Util),
    ShowExplain => ("SHOW EXPLAIN", Util),
    ShowIndexStatistics => ("SHOW INDEX_STATISTICS", Util),
    ShowUserStatistics => ("SHOW USER_STATISTICS", Util),
    ShowAuthors => ("SHOW AUTHORS", Util),
    ShowContributors => ("SHOW CONTRIBUTORS", Util),
    BackupStage => ("BACKUP STAGE", Util),
}

/// Coarse classification of statement types (paper § II: DDL / DQL / DML /
/// DCL plus transaction control and utility statements).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StmtCategory {
    Ddl,
    Dql,
    Dml,
    Dcl,
    Tcl,
    Util,
}

/// A SQL statement type — the alphabet of SQL Type Sequences.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StmtKind {
    Ddl(DdlVerb, ObjectKind),
    Other(StandaloneKind),
}

impl StmtKind {
    /// Total number of statement types (= the number of distinct
    /// [`StmtKind::code`] values, which are contiguous in `0..COUNT`).
    /// Lets dense per-kind tables be sized at compile time.
    pub const COUNT: usize = DdlVerb::ALL.len() * ObjectKind::ALL.len() + StandaloneKind::ALL.len();

    /// Every statement type known to any dialect.
    pub fn all() -> Vec<StmtKind> {
        let mut v = Vec::with_capacity(
            DdlVerb::ALL.len() * ObjectKind::ALL.len() + StandaloneKind::ALL.len(),
        );
        for &verb in &DdlVerb::ALL {
            for &obj in ObjectKind::ALL {
                v.push(StmtKind::Ddl(verb, obj));
            }
        }
        v.extend(StandaloneKind::ALL.iter().map(|&k| StmtKind::Other(k)));
        v
    }

    pub fn category(self) -> StmtCategory {
        match self {
            StmtKind::Ddl(..) => StmtCategory::Ddl,
            StmtKind::Other(k) => k.category(),
        }
    }

    /// Human/SQL-facing name, e.g. `CREATE TABLE`, `NOTIFY`.
    pub fn name(self) -> String {
        match self {
            StmtKind::Ddl(verb, obj) => format!("{} {}", verb.keyword(), obj.keyword()),
            StmtKind::Other(k) => k.name().to_string(),
        }
    }

    /// A compact stable code, useful as an RNG stream id or map key.
    /// O(1): the enums carry no payload, so the discriminant *is* the
    /// position in the `ALL` tables (both are declaration-ordered).
    pub fn code(self) -> u16 {
        match self {
            StmtKind::Ddl(verb, obj) => verb as u16 * ObjectKind::ALL.len() as u16 + obj as u16,
            StmtKind::Other(k) => (DdlVerb::ALL.len() * ObjectKind::ALL.len()) as u16 + k as u16,
        }
    }

    /// Inverse of [`StmtKind::code`]; `None` for codes outside the alphabet
    /// (e.g. read from a corrupt checkpoint).
    pub fn from_code(code: u16) -> Option<StmtKind> {
        let ddl = (DdlVerb::ALL.len() * ObjectKind::ALL.len()) as u16;
        if code < ddl {
            let verb = DdlVerb::ALL[(code / ObjectKind::ALL.len() as u16) as usize];
            let obj = ObjectKind::ALL[(code % ObjectKind::ALL.len() as u16) as usize];
            Some(StmtKind::Ddl(verb, obj))
        } else {
            StandaloneKind::ALL.get((code - ddl) as usize).map(|&k| StmtKind::Other(k))
        }
    }

    /// Statement types that are natural *sequence starters* for synthesis
    /// (paper § III-B: "Beginning from specific starting statement types
    /// (e.g., CREATE TABLE)").
    pub fn is_sequence_starter(self) -> bool {
        matches!(
            self,
            StmtKind::Ddl(DdlVerb::Create, ObjectKind::Table)
                | StmtKind::Ddl(DdlVerb::Create, ObjectKind::Schema)
                | StmtKind::Ddl(DdlVerb::Create, ObjectKind::Database)
                | StmtKind::Other(StandaloneKind::Begin)
                | StmtKind::Other(StandaloneKind::Set)
                | StmtKind::Other(StandaloneKind::Pragma)
        )
    }
}

impl fmt::Display for StmtKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StmtKind::Ddl(verb, obj) => write!(f, "{} {}", verb.keyword(), obj.keyword()),
            StmtKind::Other(k) => f.write_str(k.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_kinds_are_distinct() {
        let all = StmtKind::all();
        let set: HashSet<_> = all.iter().copied().collect();
        assert_eq!(all.len(), set.len());
    }

    #[test]
    fn codes_are_unique() {
        let all = StmtKind::all();
        let codes: HashSet<u16> = all.iter().map(|k| k.code()).collect();
        assert_eq!(codes.len(), all.len());
    }

    #[test]
    fn from_code_inverts_code() {
        for k in StmtKind::all() {
            assert_eq!(StmtKind::from_code(k.code()), Some(k));
        }
        let max = StmtKind::all().iter().map(|k| k.code()).max().unwrap();
        assert_eq!(StmtKind::from_code(max + 1), None);
    }

    #[test]
    fn names_are_unique() {
        let all = StmtKind::all();
        let names: HashSet<String> = all.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn category_of_ddl_pairs() {
        assert_eq!(StmtKind::Ddl(DdlVerb::Create, ObjectKind::Table).category(), StmtCategory::Ddl);
        assert_eq!(StmtKind::Other(StandaloneKind::Select).category(), StmtCategory::Dql);
        assert_eq!(StmtKind::Other(StandaloneKind::Insert).category(), StmtCategory::Dml);
        assert_eq!(StmtKind::Other(StandaloneKind::Grant).category(), StmtCategory::Dcl);
        assert_eq!(StmtKind::Other(StandaloneKind::Commit).category(), StmtCategory::Tcl);
    }

    #[test]
    fn sequence_starters_exist() {
        let starters: Vec<_> =
            StmtKind::all().into_iter().filter(|k| k.is_sequence_starter()).collect();
        assert!(starters.contains(&StmtKind::Ddl(DdlVerb::Create, ObjectKind::Table)));
        assert!(starters.len() >= 3);
    }

    #[test]
    fn display_matches_name() {
        for k in StmtKind::all() {
            assert_eq!(format!("{}", k), k.name());
        }
    }
}
