//! Oracle-oriented query rewrites: TLP predicate partitioning and the NoREC
//! non-optimizing scan form (SQLancer-style metamorphic oracles).
//!
//! Both rewrites operate purely on the AST, so they stay in `lego_sqlast`
//! next to the printer they must never desync from (the golden-file
//! round-trip tests pin that printer). The oracle crate executes the
//! rewritten queries and compares result multisets.

use crate::ast::{Query, Select, SelectItem, SetExpr};
use crate::expr::{Expr, UnaryOp};

/// Does the expression contain an aggregate or window function call?
/// Aggregates collapse rows, so partitioning the predicate no longer
/// commutes with evaluation and the metamorphic identity breaks.
pub fn contains_aggregate_or_window(e: &Expr) -> bool {
    const AGGREGATES: &[&str] = &["COUNT", "SUM", "MIN", "MAX", "AVG"];
    match e {
        Expr::Window { .. } => true,
        Expr::Func(f) => {
            AGGREGATES.contains(&f.name.to_ascii_uppercase().as_str())
                || f.args.iter().any(contains_aggregate_or_window)
        }
        Expr::Unary(_, inner) => contains_aggregate_or_window(inner),
        Expr::Binary(l, _, r) => contains_aggregate_or_window(l) || contains_aggregate_or_window(r),
        Expr::Like { expr, pattern, .. } => {
            contains_aggregate_or_window(expr) || contains_aggregate_or_window(pattern)
        }
        Expr::InList { expr, list, .. } => {
            contains_aggregate_or_window(expr) || list.iter().any(contains_aggregate_or_window)
        }
        Expr::Between { expr, low, high, .. } => {
            contains_aggregate_or_window(expr)
                || contains_aggregate_or_window(low)
                || contains_aggregate_or_window(high)
        }
        Expr::IsNull { expr, .. } => contains_aggregate_or_window(expr),
        Expr::Case { operand, whens, else_ } => {
            operand.as_deref().map(contains_aggregate_or_window).unwrap_or(false)
                || whens.iter().any(|(w, t)| {
                    contains_aggregate_or_window(w) || contains_aggregate_or_window(t)
                })
                || else_.as_deref().map(contains_aggregate_or_window).unwrap_or(false)
        }
        Expr::Cast { expr, .. } => contains_aggregate_or_window(expr),
        // Subqueries have their own row scope; the outer identity still holds.
        Expr::Subquery(_) | Expr::Exists { .. } => false,
        Expr::Null
        | Expr::Bool(_)
        | Expr::Integer(_)
        | Expr::Float(_)
        | Expr::Str(_)
        | Expr::Column(_) => false,
    }
}

fn select_has_window_or_aggregate(sel: &Select) -> bool {
    sel.projection.iter().any(|item| match item {
        SelectItem::Expr { expr, .. } => contains_aggregate_or_window(expr),
        SelectItem::Star | SelectItem::QualifiedStar(_) => false,
    })
}

/// The plain-`Select` body of a query that is eligible for predicate
/// partitioning: a single scan/join block whose result is a pure multiset
/// function of the filtered rows.
///
/// Excluded shapes (each breaks the partition identity or makes the
/// comparison order-sensitive): set operations, `VALUES`, `DISTINCT`,
/// `GROUP BY`/`HAVING`, aggregates or window functions in the projection,
/// `ORDER BY` + `LIMIT`/`OFFSET` (row selection depends on ordering).
pub fn partitionable(q: &Query) -> Option<&Select> {
    if q.limit.is_some() || q.offset.is_some() {
        return None;
    }
    let sel = match &q.body {
        SetExpr::Select(sel) => sel,
        _ => return None,
    };
    if sel.distinct
        || !sel.group_by.is_empty()
        || sel.having.is_some()
        || sel.from.is_empty()
        || select_has_window_or_aggregate(sel)
    {
        return None;
    }
    if let Some(w) = &sel.where_ {
        if contains_aggregate_or_window(w) {
            return None;
        }
    }
    Some(sel)
}

/// A TLP (ternary logic partitioning) rewrite of `SELECT … WHERE p`:
/// the same select with the predicate removed, plus the three partitions
/// `WHERE p`, `WHERE NOT p` and `WHERE p IS NULL`. Three-valued logic makes
/// the partitions exhaustive and mutually exclusive, so the unpartitioned
/// result must equal the multiset union of the three partitions.
pub struct TlpPartition {
    /// The select with its `WHERE` clause removed.
    pub unpartitioned: Query,
    /// `WHERE p`, `WHERE NOT p`, `WHERE p IS NULL` — in that order.
    pub partitions: [Query; 3],
}

/// Build the TLP partition of an eligible query, or `None` when the query
/// has no predicate or an ineligible shape (see [`partitionable`]).
pub fn tlp_partition(q: &Query) -> Option<TlpPartition> {
    let sel = partitionable(q)?;
    let p = sel.where_.clone()?;
    let with_where = |w: Option<Expr>| -> Query {
        let mut s = sel.clone();
        s.where_ = w;
        // Drop ORDER BY: the comparison is multiset-based and the partition
        // queries need not preserve a global order.
        Query { body: SetExpr::Select(Box::new(s)), order_by: vec![], limit: None, offset: None }
    };
    Some(TlpPartition {
        unpartitioned: with_where(None),
        partitions: [
            with_where(Some(p.clone())),
            with_where(Some(Expr::Unary(UnaryOp::Not, Box::new(p.clone())))),
            with_where(Some(Expr::IsNull { expr: Box::new(p), negated: false })),
        ],
    })
}

/// A NoREC rewrite pair: the original (optimizer-visible) filtered query
/// and its non-optimizing scan form `SELECT (p) FROM …` which evaluates the
/// predicate as a projection over the unfiltered scan. The filtered query's
/// cardinality must equal the number of scan rows on which `p` is true.
pub struct NorecPair {
    /// The original predicate query, ordering stripped (cardinality only).
    pub optimized: Query,
    /// `SELECT (p) AS norec FROM …` over the same FROM list, no WHERE.
    pub scan: Query,
}

/// Column name the NoREC scan form projects the predicate under.
pub const NOREC_COLUMN: &str = "norec";

/// Build the NoREC rewrite of an eligible predicate query (see
/// [`partitionable`]; additionally requires a `WHERE` clause).
pub fn norec_rewrite(q: &Query) -> Option<NorecPair> {
    let sel = partitionable(q)?;
    let p = sel.where_.clone()?;
    let optimized = Query {
        body: SetExpr::Select(Box::new(sel.clone())),
        order_by: vec![],
        limit: None,
        offset: None,
    };
    let mut scan_sel = sel.clone();
    scan_sel.where_ = None;
    scan_sel.projection = vec![SelectItem::Expr { expr: p, alias: Some(NOREC_COLUMN.into()) }];
    let scan = Query {
        body: SetExpr::Select(Box::new(scan_sel)),
        order_by: vec![],
        limit: None,
        offset: None,
    };
    Some(NorecPair { optimized, scan })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::TableRef;

    fn filtered_query() -> Query {
        Query::select(Select {
            distinct: false,
            projection: vec![SelectItem::Star],
            from: vec![TableRef::named("t")],
            where_: Some(Expr::binary(Expr::col("a"), crate::expr::BinOp::Lt, Expr::int(5))),
            group_by: vec![],
            having: None,
        })
    }

    #[test]
    fn tlp_partitions_render_the_three_predicates() {
        let part = tlp_partition(&filtered_query()).expect("eligible");
        assert_eq!(part.unpartitioned.to_string(), "SELECT * FROM t");
        let sqls: Vec<String> = part.partitions.iter().map(|q| q.to_string()).collect();
        assert_eq!(sqls[0], "SELECT * FROM t WHERE (a < 5)");
        assert_eq!(sqls[1], "SELECT * FROM t WHERE NOT ((a < 5))");
        assert_eq!(sqls[2], "SELECT * FROM t WHERE ((a < 5) IS NULL)");
    }

    #[test]
    fn norec_scan_projects_the_predicate() {
        let pair = norec_rewrite(&filtered_query()).expect("eligible");
        assert_eq!(pair.optimized.to_string(), "SELECT * FROM t WHERE (a < 5)");
        assert_eq!(pair.scan.to_string(), "SELECT (a < 5) AS norec FROM t");
    }

    #[test]
    fn ineligible_shapes_are_rejected() {
        let mut q = filtered_query();
        q.limit = Some(Expr::int(3));
        assert!(tlp_partition(&q).is_none());

        let no_where = Query::star_from("t");
        assert!(tlp_partition(&no_where).is_none());
        assert!(norec_rewrite(&no_where).is_none());

        let agg = Query::select(Select {
            distinct: false,
            projection: vec![SelectItem::Expr {
                expr: Expr::Func(crate::expr::FuncCall::star("COUNT")),
                alias: None,
            }],
            from: vec![TableRef::named("t")],
            where_: Some(Expr::Bool(true)),
            group_by: vec![],
            having: None,
        });
        assert!(tlp_partition(&agg).is_none());

        let distinct = Query::select(Select {
            distinct: true,
            projection: vec![SelectItem::Star],
            from: vec![TableRef::named("t")],
            where_: Some(Expr::Bool(true)),
            group_by: vec![],
            having: None,
        });
        assert!(norec_rewrite(&distinct).is_none());
    }

    #[test]
    fn rewrites_round_trip_through_the_printer() {
        // The oracle executes re-printed queries only through the AST, but
        // keeping the printed forms parseable guards against printer drift.
        let part = tlp_partition(&filtered_query()).unwrap();
        for q in std::iter::once(&part.unpartitioned).chain(part.partitions.iter()) {
            assert!(!q.to_string().is_empty());
        }
    }
}
