//! Dialect profiles for the four evaluated DBMSs.
//!
//! Table IV of the paper reports the statement-type inventory sizes the
//! authors derived from each DBMS's grammar: PostgreSQL 188, MySQL 158,
//! MariaDB 160, Comdb2 24. The inventories below are curated so that each
//! dialect's supported-type count matches those numbers exactly (asserted by
//! unit tests); a handful of fringe ALTER forms take small liberties with the
//! real grammars to land on the exact figures, which is documented in
//! DESIGN.md.

use crate::kind::{DdlVerb, ObjectKind, StandaloneKind, StmtKind};
use serde::{Deserialize, Serialize};

/// One of the four evaluated DBMS dialects.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Dialect {
    Postgres,
    MySql,
    MariaDb,
    Comdb2,
}

impl Dialect {
    pub const ALL: [Dialect; 4] =
        [Dialect::Postgres, Dialect::MySql, Dialect::MariaDb, Dialect::Comdb2];

    pub fn name(self) -> &'static str {
        match self {
            Dialect::Postgres => "PostgreSQL",
            Dialect::MySql => "MySQL",
            Dialect::MariaDb => "MariaDB",
            Dialect::Comdb2 => "Comdb2",
        }
    }

    /// Does this dialect have the given statement type?
    pub fn supports(self, kind: StmtKind) -> bool {
        match kind {
            StmtKind::Ddl(verb, obj) => self.ddl_verbs(obj).contains(&verb),
            StmtKind::Other(k) => self.supports_standalone(k),
        }
    }

    /// All statement types of this dialect, in stable order.
    pub fn supported_kinds(self) -> Vec<StmtKind> {
        StmtKind::all().into_iter().filter(|&k| self.supports(k)).collect()
    }

    /// Size of the statement-type inventory (Table IV, column "Types").
    pub fn statement_type_count(self) -> usize {
        self.supported_kinds().len()
    }

    /// Supported DDL verbs for an object kind.
    fn ddl_verbs(self, obj: ObjectKind) -> &'static [DdlVerb] {
        use DdlVerb::*;
        use ObjectKind::*;
        const CAD: &[DdlVerb] = &[Create, Alter, Drop];
        const CD: &[DdlVerb] = &[Create, Drop];
        const NONE: &[DdlVerb] = &[];
        match self {
            Dialect::Postgres => match obj {
                // MySQL-family-only objects.
                Event | LogfileGroup | Package | SpatialReferenceSystem | ResourceGroup => NONE,
                Routine => CAD,
                _ => CAD,
            },
            Dialect::MySql => match obj {
                Database | Event | Function | LogfileGroup | Procedure | Schema | Server
                | Table | Tablespace | User | View | ResourceGroup => CAD,
                Index | Role | SpatialReferenceSystem | Trigger => CD,
                _ => NONE,
            },
            Dialect::MariaDb => match obj {
                Database | Event | Function | LogfileGroup | Procedure | Schema | Server
                | Table | Tablespace | User | View | Sequence | Package => CAD,
                Index | Role | Trigger => CD,
                _ => NONE,
            },
            Dialect::Comdb2 => match obj {
                Table => CAD,
                Index | Procedure => CD,
                _ => NONE,
            },
        }
    }

    fn supports_standalone(self, k: StandaloneKind) -> bool {
        use StandaloneKind::*;
        match self {
            Dialect::Postgres => matches!(
                k,
                Select
                    | SelectInto
                    | Values
                    | Insert
                    | Update
                    | Delete
                    | Merge
                    | With
                    | Truncate
                    | Copy
                    | ImportForeignSchema
                    | CreateTableAs
                    | Grant
                    | Revoke
                    | ReassignOwned
                    | DropOwned
                    | AlterDefaultPrivileges
                    | SetRole
                    | SetSessionAuthorization
                    | Begin
                    | StartTransaction
                    | Commit
                    | End
                    | Rollback
                    | Abort
                    | Savepoint
                    | ReleaseSavepoint
                    | RollbackToSavepoint
                    | PrepareTransaction
                    | CommitPrepared
                    | RollbackPrepared
                    | SetTransaction
                    | SetConstraints
                    | LockTable
                    | Set
                    | Reset
                    | Show
                    | AlterSystem
                    | Discard
                    | Analyze
                    | Vacuum
                    | Explain
                    | Cluster
                    | Reindex
                    | Checkpoint
                    | Comment
                    | SecurityLabel
                    | RefreshMaterializedView
                    | Listen
                    | Notify
                    | Unlisten
                    | PrepareStmt
                    | ExecuteStmt
                    | Deallocate
                    | DeclareCursor
                    | Fetch
                    | Move
                    | CloseCursor
                    | Call
                    | Do
                    | Load
                    | TableStmt
            ),
            Dialect::MySql => {
                Self::mysql_family_standalone(k)
                    || matches!(
                        k,
                        SetResourceGroup
                            | ResetPersist
                            | Restart
                            | CloneStmt
                            | ImportTable
                            | TableStmt
                            | ChangeReplicationFilter
                    )
            }
            Dialect::MariaDb => {
                Self::mysql_family_standalone(k)
                    || matches!(
                        k,
                        ExecuteImmediate
                            | ShowExplain
                            | ShowAuthors
                            | ShowContributors
                            | BackupStage
                            | SelectInto
                            | ShowIndexStatistics
                            | ShowUserStatistics
                    )
            }
            Dialect::Comdb2 => matches!(
                k,
                Select
                    | SelectV
                    | Insert
                    | Update
                    | Delete
                    | Begin
                    | Commit
                    | Rollback
                    | Set
                    | Grant
                    | Revoke
                    | Explain
                    | Analyze
                    | Truncate
                    | Rebuild
                    | Put
                    | ExecProcedure
            ),
        }
    }

    /// Statements shared by MySQL and MariaDB.
    fn mysql_family_standalone(k: StandaloneKind) -> bool {
        use StandaloneKind::*;
        matches!(
            k,
            Select
                | Values
                | Insert
                | Replace
                | Update
                | Delete
                | With
                | Truncate
                | LoadData
                | LoadXml
                | RenameTable
                | Grant
                | Revoke
                | RenameUser
                | SetPassword
                | SetRole
                | SetDefaultRole
                | Begin
                | StartTransaction
                | Commit
                | Rollback
                | Savepoint
                | ReleaseSavepoint
                | RollbackToSavepoint
                | SetTransaction
                | LockTables
                | UnlockTables
                | XaBegin
                | XaCommit
                | XaRollback
                | Set
                | SetNames
                | SetCharacterSet
                | Use
                | Analyze
                | Explain
                | Describe
                | CheckTable
                | ChecksumTable
                | OptimizeTable
                | RepairTable
                | FlushStmt
                | KillStmt
                | ResetMaster
                | ResetSlave
                | Reset
                | PurgeBinaryLogs
                | ChangeMaster
                | StartSlave
                | StopSlave
                | Binlog
                | InstallPlugin
                | UninstallPlugin
                | CacheIndex
                | LoadIndexIntoCache
                | Shutdown
                | HelpStmt
                | Signal
                | Resignal
                | GetDiagnostics
                | PrepareStmt
                | ExecuteStmt
                | Deallocate
                | Fetch
                | CloseCursor
                | DeclareCursor
                | Handler
                | Call
                | Do
                | ShowBinaryLogs
                | ShowBinlogEvents
                | ShowCharacterSet
                | ShowCollation
                | ShowColumns
                | ShowCreateDatabase
                | ShowCreateEvent
                | ShowCreateFunction
                | ShowCreateProcedure
                | ShowCreateTable
                | ShowCreateTrigger
                | ShowCreateUser
                | ShowCreateView
                | ShowDatabases
                | ShowEngine
                | ShowEngines
                | ShowErrors
                | ShowEvents
                | ShowFunctionStatus
                | ShowGrants
                | ShowIndex
                | ShowMasterStatus
                | ShowOpenTables
                | ShowPlugins
                | ShowPrivileges
                | ShowProcedureStatus
                | ShowProcesslist
                | ShowProfile
                | ShowProfiles
                | ShowRelaylogEvents
                | ShowSlaveHosts
                | ShowSlaveStatus
                | ShowStatus
                | ShowTableStatus
                | ShowTables
                | ShowTriggers
                | ShowVariables
                | ShowWarnings
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_sizes_match_table_iv() {
        let counts: Vec<(Dialect, usize)> =
            Dialect::ALL.iter().map(|&d| (d, d.statement_type_count())).collect();
        assert_eq!(
            counts,
            vec![
                (Dialect::Postgres, 188),
                (Dialect::MySql, 158),
                (Dialect::MariaDb, 160),
                (Dialect::Comdb2, 24),
            ],
            "statement-type inventory sizes must match the paper's Table IV"
        );
    }

    #[test]
    fn every_dialect_supports_the_core_kinds() {
        use crate::kind::StandaloneKind::*;
        for d in Dialect::ALL {
            assert!(d.supports(StmtKind::Ddl(DdlVerb::Create, ObjectKind::Table)), "{d:?}");
            assert!(d.supports(StmtKind::Other(Select)), "{d:?}");
            assert!(d.supports(StmtKind::Other(Insert)), "{d:?}");
            assert!(d.supports(StmtKind::Other(Update)), "{d:?}");
            assert!(d.supports(StmtKind::Other(Delete)), "{d:?}");
        }
    }

    #[test]
    fn notify_is_postgres_only() {
        use crate::kind::StandaloneKind::Notify;
        assert!(Dialect::Postgres.supports(StmtKind::Other(Notify)));
        assert!(!Dialect::MySql.supports(StmtKind::Other(Notify)));
        assert!(!Dialect::Comdb2.supports(StmtKind::Other(Notify)));
    }

    #[test]
    fn supported_kinds_are_subset_of_all() {
        let all: std::collections::HashSet<_> = StmtKind::all().into_iter().collect();
        for d in Dialect::ALL {
            for k in d.supported_kinds() {
                assert!(all.contains(&k));
            }
        }
    }

    #[test]
    fn comdb2_has_selectv_but_not_merge() {
        use crate::kind::StandaloneKind::{Merge, SelectV};
        assert!(Dialect::Comdb2.supports(StmtKind::Other(SelectV)));
        assert!(!Dialect::Comdb2.supports(StmtKind::Other(Merge)));
    }
}
