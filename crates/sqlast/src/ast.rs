//! Statements, queries, and their SQL rendering.

use crate::expr::{DataType, Expr, OrderItem};
use crate::kind::{DdlVerb, ObjectKind, StandaloneKind, StmtKind};
use std::fmt;

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

/// A full query: set-expression body plus ordering/limits.
#[derive(Clone, PartialEq, Debug)]
pub struct Query {
    pub body: SetExpr,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<Expr>,
    pub offset: Option<Expr>,
}

impl Query {
    pub fn select(select: Select) -> Self {
        Query {
            body: SetExpr::Select(Box::new(select)),
            order_by: vec![],
            limit: None,
            offset: None,
        }
    }

    /// `SELECT * FROM <table>`.
    pub fn star_from(table: impl Into<String>) -> Self {
        Query::select(Select {
            distinct: false,
            projection: vec![SelectItem::Star],
            from: vec![TableRef::named(table)],
            where_: None,
            group_by: vec![],
            having: None,
        })
    }
}

#[derive(Clone, PartialEq, Debug)]
pub enum SetExpr {
    Select(Box<Select>),
    SetOp { op: SetOp, all: bool, left: Box<SetExpr>, right: Box<SetExpr> },
    Values(Vec<Vec<Expr>>),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SetOp {
    Union,
    Except,
    Intersect,
}

impl SetOp {
    pub fn keyword(self) -> &'static str {
        match self {
            SetOp::Union => "UNION",
            SetOp::Except => "EXCEPT",
            SetOp::Intersect => "INTERSECT",
        }
    }
}

#[derive(Clone, PartialEq, Debug)]
pub struct Select {
    pub distinct: bool,
    pub projection: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub where_: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
}

#[derive(Clone, PartialEq, Debug)]
pub enum SelectItem {
    Star,
    QualifiedStar(String),
    Expr { expr: Expr, alias: Option<String> },
}

#[derive(Clone, PartialEq, Debug)]
pub enum TableRef {
    Named { name: String, alias: Option<String> },
    Join { left: Box<TableRef>, right: Box<TableRef>, kind: JoinKind, on: Option<Expr> },
    Subquery { query: Box<Query>, alias: String },
}

impl TableRef {
    pub fn named(name: impl Into<String>) -> Self {
        TableRef::Named { name: name.into(), alias: None }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JoinKind {
    Inner,
    Left,
    Right,
    Cross,
}

impl JoinKind {
    pub fn keyword(self) -> &'static str {
        match self {
            JoinKind::Inner => "JOIN",
            JoinKind::Left => "LEFT JOIN",
            JoinKind::Right => "RIGHT JOIN",
            JoinKind::Cross => "CROSS JOIN",
        }
    }
}

// ---------------------------------------------------------------------------
// DDL payloads
// ---------------------------------------------------------------------------

#[derive(Clone, PartialEq, Debug)]
pub struct ColumnDef {
    pub name: String,
    pub ty: DataType,
    pub constraints: Vec<ColumnConstraint>,
}

impl ColumnDef {
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Self { name: name.into(), ty, constraints: vec![] }
    }
}

#[derive(Clone, PartialEq, Debug)]
pub enum ColumnConstraint {
    PrimaryKey,
    Unique,
    NotNull,
    Default(Expr),
    Check(Expr),
    References { table: String, column: Option<String> },
}

#[derive(Clone, PartialEq, Debug)]
pub enum TableConstraint {
    PrimaryKey(Vec<String>),
    Unique(Vec<String>),
    Check(Expr),
    ForeignKey { columns: Vec<String>, ref_table: String, ref_columns: Vec<String> },
}

#[derive(Clone, PartialEq, Debug)]
pub struct CreateTable {
    pub name: String,
    pub temporary: bool,
    pub if_not_exists: bool,
    pub columns: Vec<ColumnDef>,
    pub constraints: Vec<TableConstraint>,
}

#[derive(Clone, PartialEq, Debug)]
pub struct CreateView {
    pub name: String,
    pub or_replace: bool,
    pub materialized: bool,
    pub query: Box<Query>,
}

#[derive(Clone, PartialEq, Debug)]
pub struct CreateIndex {
    pub name: String,
    pub unique: bool,
    pub table: String,
    pub columns: Vec<String>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TriggerTiming {
    Before,
    After,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DmlEvent {
    Insert,
    Update,
    Delete,
}

impl DmlEvent {
    pub fn keyword(self) -> &'static str {
        match self {
            DmlEvent::Insert => "INSERT",
            DmlEvent::Update => "UPDATE",
            DmlEvent::Delete => "DELETE",
        }
    }
}

#[derive(Clone, PartialEq, Debug)]
pub struct CreateTrigger {
    pub name: String,
    pub timing: TriggerTiming,
    pub event: DmlEvent,
    pub table: String,
    pub for_each_row: bool,
    pub action: Box<Statement>,
}

/// PostgreSQL `CREATE RULE ... AS ON <event> TO <table> DO [INSTEAD] <action>`.
#[derive(Clone, PartialEq, Debug)]
pub struct CreateRule {
    pub name: String,
    pub or_replace: bool,
    pub table: String,
    pub event: DmlEvent,
    pub instead: bool,
    /// `None` renders as `DO INSTEAD NOTHING`.
    pub action: Option<Box<Statement>>,
}

#[derive(Clone, PartialEq, Debug)]
pub struct DropStmt {
    pub object: ObjectKind,
    pub if_exists: bool,
    pub name: String,
    /// `DROP TRIGGER name ON table` / `DROP RULE name ON table`.
    pub on_table: Option<String>,
}

#[derive(Clone, PartialEq, Debug)]
pub enum AlterTableAction {
    AddColumn(ColumnDef),
    DropColumn(String),
    RenameColumn { old: String, new: String },
    RenameTo(String),
    AlterColumnType { name: String, ty: DataType },
}

#[derive(Clone, PartialEq, Debug)]
pub struct AlterTable {
    pub name: String,
    pub action: AlterTableAction,
}

/// Exotic DDL handled generically: `<VERB> <OBJECT> name [arg...]`.
#[derive(Clone, PartialEq, Debug)]
pub struct GenericDdl {
    pub verb: DdlVerb,
    pub object: ObjectKind,
    pub name: String,
    pub arg: Option<String>,
}

// ---------------------------------------------------------------------------
// DML payloads
// ---------------------------------------------------------------------------

#[derive(Clone, PartialEq, Debug)]
pub enum InsertSource {
    Values(Vec<Vec<Expr>>),
    Query(Box<Query>),
    DefaultValues,
}

#[derive(Clone, PartialEq, Debug)]
pub struct Insert {
    pub table: String,
    pub columns: Vec<String>,
    pub source: InsertSource,
    /// `INSERT IGNORE` (MySQL family) / `INSERT OR IGNORE`.
    pub ignore: bool,
    /// Renders as `REPLACE INTO` (MySQL family); changes the statement type.
    pub replace: bool,
    /// `LOW_PRIORITY` noise flag, kept for fidelity with the paper's examples.
    pub low_priority: bool,
}

#[derive(Clone, PartialEq, Debug)]
pub struct Update {
    pub table: String,
    pub assignments: Vec<(String, Expr)>,
    pub where_: Option<Expr>,
}

#[derive(Clone, PartialEq, Debug)]
pub struct Delete {
    pub table: String,
    pub where_: Option<Expr>,
}

/// A common-table-expression binding in a `WITH` statement. PostgreSQL allows
/// data-modifying CTEs — the case-study bug needs them.
#[derive(Clone, PartialEq, Debug)]
pub enum CteBody {
    Query(Box<Query>),
    Dml(Box<Statement>),
}

#[derive(Clone, PartialEq, Debug)]
pub struct Cte {
    pub name: String,
    pub body: CteBody,
}

/// `WITH <ctes> <stmt>` — a distinct statement type (the paper treats WITH as
/// its own type, e.g. the "CREATE RULE→NOTIFY→COPY→WITH" sequence).
#[derive(Clone, PartialEq, Debug)]
pub struct WithStmt {
    pub ctes: Vec<Cte>,
    pub body: Box<Statement>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CopyDirection {
    To,
    From,
}

#[derive(Clone, PartialEq, Debug)]
pub enum CopySource {
    Table { name: String, columns: Vec<String> },
    Query(Box<Query>),
}

#[derive(Clone, PartialEq, Debug)]
pub struct CopyStmt {
    pub source: CopySource,
    pub direction: CopyDirection,
    /// `STDOUT`, `STDIN`, or a filename.
    pub target: String,
    pub options: Vec<String>,
}

#[derive(Clone, PartialEq, Debug)]
pub struct GrantStmt {
    pub privilege: String,
    pub object: String,
    pub grantee: String,
}

#[derive(Clone, PartialEq, Debug)]
pub struct SetStmt {
    /// e.g. `@@SESSION.`, `SESSION`, `GLOBAL`, `LOCAL`.
    pub scope: Option<String>,
    pub name: String,
    pub value: String,
}

/// A select statement's flavour; `SELECTV` (Comdb2) and `SELECT INTO` are
/// distinct statement types in the inventory.
#[derive(Clone, PartialEq, Debug)]
pub enum SelectVariant {
    Plain,
    SelectV,
    Into(String),
}

#[derive(Clone, PartialEq, Debug)]
pub struct SelectStmt {
    pub query: Box<Query>,
    pub variant: SelectVariant,
}

/// Any statement type without a dedicated payload: `<NAME> [arg]`.
#[derive(Clone, PartialEq, Debug)]
pub struct MiscStmt {
    pub kind: StandaloneKind,
    pub arg: Option<String>,
}

// ---------------------------------------------------------------------------
// Statement
// ---------------------------------------------------------------------------

/// One SQL statement — the smallest execution unit fed to a DBMS (paper § II).
#[derive(Clone, PartialEq, Debug)]
pub enum Statement {
    CreateTable(CreateTable),
    CreateView(CreateView),
    CreateIndex(CreateIndex),
    CreateTrigger(CreateTrigger),
    CreateRule(CreateRule),
    CreateTableAs { name: String, query: Box<Query> },
    AlterTable(AlterTable),
    Drop(DropStmt),
    GenericDdl(GenericDdl),
    Select(SelectStmt),
    Insert(Insert),
    Update(Update),
    Delete(Delete),
    With(WithStmt),
    Values(Vec<Vec<Expr>>),
    Truncate { table: String },
    Copy(CopyStmt),
    Grant(GrantStmt),
    Revoke(GrantStmt),
    Begin,
    StartTransaction,
    Commit,
    End,
    Rollback,
    Abort,
    Savepoint(String),
    ReleaseSavepoint(String),
    RollbackToSavepoint(String),
    Set(SetStmt),
    Reset(String),
    Show(String),
    Pragma { name: String, value: Option<String> },
    Analyze(Option<String>),
    Vacuum { table: Option<String>, full: bool },
    Explain(Box<Statement>),
    Reindex(Option<String>),
    Checkpoint,
    Cluster(Option<String>),
    Discard(String),
    Listen(String),
    Notify { channel: String, payload: Option<String> },
    Unlisten(String),
    LockTable { table: String, mode: Option<String> },
    Comment { object: ObjectKind, name: String, text: String },
    Call { name: String, args: Vec<Expr> },
    RefreshMatView(String),
    Misc(MiscStmt),
}

impl Statement {
    /// The statement's type — the unit of the SQL Type Sequence.
    pub fn kind(&self) -> StmtKind {
        use StandaloneKind as K;
        match self {
            Statement::CreateTable(_) => StmtKind::Ddl(DdlVerb::Create, ObjectKind::Table),
            Statement::CreateView(v) if v.materialized => {
                StmtKind::Ddl(DdlVerb::Create, ObjectKind::MaterializedView)
            }
            Statement::CreateView(_) => StmtKind::Ddl(DdlVerb::Create, ObjectKind::View),
            Statement::CreateIndex(_) => StmtKind::Ddl(DdlVerb::Create, ObjectKind::Index),
            Statement::CreateTrigger(_) => StmtKind::Ddl(DdlVerb::Create, ObjectKind::Trigger),
            Statement::CreateRule(_) => StmtKind::Ddl(DdlVerb::Create, ObjectKind::Rule),
            Statement::CreateTableAs { .. } => StmtKind::Other(K::CreateTableAs),
            Statement::AlterTable(_) => StmtKind::Ddl(DdlVerb::Alter, ObjectKind::Table),
            Statement::Drop(d) => StmtKind::Ddl(DdlVerb::Drop, d.object),
            Statement::GenericDdl(g) => StmtKind::Ddl(g.verb, g.object),
            Statement::Select(s) => match &s.variant {
                SelectVariant::Plain => StmtKind::Other(K::Select),
                SelectVariant::SelectV => StmtKind::Other(K::SelectV),
                SelectVariant::Into(_) => StmtKind::Other(K::SelectInto),
            },
            Statement::Insert(i) if i.replace => StmtKind::Other(K::Replace),
            Statement::Insert(_) => StmtKind::Other(K::Insert),
            Statement::Update(_) => StmtKind::Other(K::Update),
            Statement::Delete(_) => StmtKind::Other(K::Delete),
            Statement::With(_) => StmtKind::Other(K::With),
            Statement::Values(_) => StmtKind::Other(K::Values),
            Statement::Truncate { .. } => StmtKind::Other(K::Truncate),
            Statement::Copy(_) => StmtKind::Other(K::Copy),
            Statement::Grant(_) => StmtKind::Other(K::Grant),
            Statement::Revoke(_) => StmtKind::Other(K::Revoke),
            Statement::Begin => StmtKind::Other(K::Begin),
            Statement::StartTransaction => StmtKind::Other(K::StartTransaction),
            Statement::Commit => StmtKind::Other(K::Commit),
            Statement::End => StmtKind::Other(K::End),
            Statement::Rollback => StmtKind::Other(K::Rollback),
            Statement::Abort => StmtKind::Other(K::Abort),
            Statement::Savepoint(_) => StmtKind::Other(K::Savepoint),
            Statement::ReleaseSavepoint(_) => StmtKind::Other(K::ReleaseSavepoint),
            Statement::RollbackToSavepoint(_) => StmtKind::Other(K::RollbackToSavepoint),
            Statement::Set(_) => StmtKind::Other(K::Set),
            Statement::Reset(_) => StmtKind::Other(K::Reset),
            Statement::Show(_) => StmtKind::Other(K::Show),
            Statement::Pragma { .. } => StmtKind::Other(K::Pragma),
            Statement::Analyze(_) => StmtKind::Other(K::Analyze),
            Statement::Vacuum { .. } => StmtKind::Other(K::Vacuum),
            Statement::Explain(_) => StmtKind::Other(K::Explain),
            Statement::Reindex(_) => StmtKind::Other(K::Reindex),
            Statement::Checkpoint => StmtKind::Other(K::Checkpoint),
            Statement::Cluster(_) => StmtKind::Other(K::Cluster),
            Statement::Discard(_) => StmtKind::Other(K::Discard),
            Statement::Listen(_) => StmtKind::Other(K::Listen),
            Statement::Notify { .. } => StmtKind::Other(K::Notify),
            Statement::Unlisten(_) => StmtKind::Other(K::Unlisten),
            Statement::LockTable { .. } => StmtKind::Other(K::LockTable),
            Statement::Comment { .. } => StmtKind::Other(K::Comment),
            Statement::Call { .. } => StmtKind::Other(K::Call),
            Statement::RefreshMatView(_) => StmtKind::Other(K::RefreshMaterializedView),
            Statement::Misc(m) => StmtKind::Other(m.kind),
        }
    }
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn comma_sep<T: fmt::Display>(f: &mut fmt::Formatter<'_>, items: &[T]) -> fmt::Result {
    for (i, it) in items.iter().enumerate() {
        if i > 0 {
            f.write_str(", ")?;
        }
        write!(f, "{}", it)?;
    }
    Ok(())
}

fn comma_sep_str(f: &mut fmt::Formatter<'_>, items: &[String]) -> fmt::Result {
    for (i, it) in items.iter().enumerate() {
        if i > 0 {
            f.write_str(", ")?;
        }
        f.write_str(it)?;
    }
    Ok(())
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.body)?;
        if !self.order_by.is_empty() {
            f.write_str(" ORDER BY ")?;
            comma_sep(f, &self.order_by)?;
        }
        if let Some(l) = &self.limit {
            write!(f, " LIMIT {}", l)?;
        }
        if let Some(o) = &self.offset {
            write!(f, " OFFSET {}", o)?;
        }
        Ok(())
    }
}

impl fmt::Display for SetExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetExpr::Select(s) => write!(f, "{}", s),
            SetExpr::SetOp { op, all, left, right } => {
                write!(f, "{} {}{} {}", left, op.keyword(), if *all { " ALL" } else { "" }, right)
            }
            SetExpr::Values(rows) => {
                f.write_str("VALUES ")?;
                for (i, row) in rows.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    f.write_str("(")?;
                    comma_sep(f, row)?;
                    f.write_str(")")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        comma_sep(f, &self.projection)?;
        if !self.from.is_empty() {
            f.write_str(" FROM ")?;
            comma_sep(f, &self.from)?;
        }
        if let Some(w) = &self.where_ {
            write!(f, " WHERE {}", w)?;
        }
        if !self.group_by.is_empty() {
            f.write_str(" GROUP BY ")?;
            comma_sep(f, &self.group_by)?;
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {}", h)?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Star => f.write_str("*"),
            SelectItem::QualifiedStar(t) => write!(f, "{}.*", t),
            SelectItem::Expr { expr, alias } => {
                write!(f, "{}", expr)?;
                if let Some(a) = alias {
                    write!(f, " AS {}", a)?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableRef::Named { name, alias } => {
                f.write_str(name)?;
                if let Some(a) = alias {
                    write!(f, " AS {}", a)?;
                }
                Ok(())
            }
            TableRef::Join { left, right, kind, on } => {
                write!(f, "{} {} {}", left, kind.keyword(), right)?;
                if let Some(on) = on {
                    write!(f, " ON {}", on)?;
                }
                Ok(())
            }
            TableRef::Subquery { query, alias } => write!(f, "({}) AS {}", query, alias),
        }
    }
}

impl fmt::Display for ColumnDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.ty)?;
        for c in &self.constraints {
            write!(f, " {}", c)?;
        }
        Ok(())
    }
}

impl fmt::Display for ColumnConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnConstraint::PrimaryKey => f.write_str("PRIMARY KEY"),
            ColumnConstraint::Unique => f.write_str("UNIQUE"),
            ColumnConstraint::NotNull => f.write_str("NOT NULL"),
            ColumnConstraint::Default(e) => write!(f, "DEFAULT {}", e),
            ColumnConstraint::Check(e) => write!(f, "CHECK ({})", e),
            ColumnConstraint::References { table, column } => {
                write!(f, "REFERENCES {}", table)?;
                if let Some(c) = column {
                    write!(f, "({})", c)?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for TableConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableConstraint::PrimaryKey(cols) => {
                f.write_str("PRIMARY KEY (")?;
                comma_sep_str(f, cols)?;
                f.write_str(")")
            }
            TableConstraint::Unique(cols) => {
                f.write_str("UNIQUE (")?;
                comma_sep_str(f, cols)?;
                f.write_str(")")
            }
            TableConstraint::Check(e) => write!(f, "CHECK ({})", e),
            TableConstraint::ForeignKey { columns, ref_table, ref_columns } => {
                f.write_str("FOREIGN KEY (")?;
                comma_sep_str(f, columns)?;
                write!(f, ") REFERENCES {}", ref_table)?;
                if !ref_columns.is_empty() {
                    f.write_str(" (")?;
                    comma_sep_str(f, ref_columns)?;
                    f.write_str(")")?;
                }
                Ok(())
            }
        }
    }
}

/// Byte offset of the earliest top-level SELECT clause keyword in the
/// rendered query text: the splice point for `SELECT ... INTO <t>`.
/// Occurrences inside parentheses (subqueries, call arguments) or inside
/// single-quoted string literals are skipped.
fn top_level_clause_pos(text: &str) -> Option<usize> {
    const CLAUSES: [&str; 10] = [
        " FROM ",
        " WHERE ",
        " GROUP BY ",
        " HAVING ",
        " ORDER BY ",
        " LIMIT ",
        " OFFSET ",
        " UNION ",
        " EXCEPT ",
        " INTERSECT ",
    ];
    let bytes = text.as_bytes();
    let mut depth = 0usize;
    let mut in_str = false;
    for i in 0..bytes.len() {
        if in_str {
            if bytes[i] == b'\'' {
                in_str = false;
            }
            continue;
        }
        match bytes[i] {
            b'\'' => in_str = true,
            b'(' => depth += 1,
            b')' => depth = depth.saturating_sub(1),
            b' ' if depth == 0 && CLAUSES.iter().any(|k| text[i..].starts_with(k)) => {
                return Some(i);
            }
            _ => {}
        }
    }
    None
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::CreateTable(c) => {
                f.write_str("CREATE ")?;
                if c.temporary {
                    f.write_str("TEMPORARY ")?;
                }
                f.write_str("TABLE ")?;
                if c.if_not_exists {
                    f.write_str("IF NOT EXISTS ")?;
                }
                write!(f, "{} (", c.name)?;
                for (i, col) in c.columns.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{}", col)?;
                }
                for tc in &c.constraints {
                    f.write_str(", ")?;
                    write!(f, "{}", tc)?;
                }
                f.write_str(")")
            }
            Statement::CreateView(v) => {
                f.write_str("CREATE ")?;
                if v.or_replace {
                    f.write_str("OR REPLACE ")?;
                }
                if v.materialized {
                    f.write_str("MATERIALIZED ")?;
                }
                write!(f, "VIEW {} AS {}", v.name, v.query)
            }
            Statement::CreateIndex(i) => {
                f.write_str("CREATE ")?;
                if i.unique {
                    f.write_str("UNIQUE ")?;
                }
                write!(f, "INDEX {} ON {} (", i.name, i.table)?;
                comma_sep_str(f, &i.columns)?;
                f.write_str(")")
            }
            Statement::CreateTrigger(t) => {
                let timing = match t.timing {
                    TriggerTiming::Before => "BEFORE",
                    TriggerTiming::After => "AFTER",
                };
                write!(
                    f,
                    "CREATE TRIGGER {} {} {} ON {}",
                    t.name,
                    timing,
                    t.event.keyword(),
                    t.table
                )?;
                if t.for_each_row {
                    f.write_str(" FOR EACH ROW")?;
                }
                write!(f, " {}", t.action)
            }
            Statement::CreateRule(r) => {
                f.write_str("CREATE ")?;
                if r.or_replace {
                    f.write_str("OR REPLACE ")?;
                }
                write!(f, "RULE {} AS ON {} TO {} DO", r.name, r.event.keyword(), r.table)?;
                if r.instead {
                    f.write_str(" INSTEAD")?;
                }
                match &r.action {
                    Some(a) => write!(f, " {}", a),
                    None => f.write_str(" NOTHING"),
                }
            }
            Statement::CreateTableAs { name, query } => {
                write!(f, "CREATE TABLE {} AS {}", name, query)
            }
            Statement::AlterTable(a) => {
                write!(f, "ALTER TABLE {} ", a.name)?;
                match &a.action {
                    AlterTableAction::AddColumn(c) => write!(f, "ADD COLUMN {}", c),
                    AlterTableAction::DropColumn(c) => write!(f, "DROP COLUMN {}", c),
                    AlterTableAction::RenameColumn { old, new } => {
                        write!(f, "RENAME COLUMN {} TO {}", old, new)
                    }
                    AlterTableAction::RenameTo(n) => write!(f, "RENAME TO {}", n),
                    AlterTableAction::AlterColumnType { name, ty } => {
                        write!(f, "ALTER COLUMN {} TYPE {}", name, ty)
                    }
                }
            }
            Statement::Drop(d) => {
                write!(f, "DROP {} ", d.object.keyword())?;
                if d.if_exists {
                    f.write_str("IF EXISTS ")?;
                }
                f.write_str(&d.name)?;
                if let Some(t) = &d.on_table {
                    write!(f, " ON {}", t)?;
                }
                Ok(())
            }
            Statement::GenericDdl(g) => {
                write!(f, "{} {} {}", g.verb.keyword(), g.object.keyword(), g.name)?;
                if let Some(a) = &g.arg {
                    write!(f, " {}", a)?;
                }
                Ok(())
            }
            Statement::Select(s) => match &s.variant {
                SelectVariant::Plain => write!(f, "{}", s.query),
                SelectVariant::SelectV => {
                    // Render the leading SELECT as SELECTV.
                    let text = s.query.to_string();
                    f.write_str(&text.replacen("SELECT", "SELECTV", 1))
                }
                SelectVariant::Into(target) => {
                    // `SELECT <proj> INTO <t> FROM ...`: splice INTO right
                    // after the projection list — the only position the
                    // grammar accepts. In a FROM-less query the next clause
                    // (WHERE/GROUP BY/ORDER BY/LIMIT/...) marks that spot;
                    // appending INTO at the end would not re-parse. Only
                    // top-level clause keywords count — a FROM inside a
                    // parenthesized subquery or a string literal must not
                    // attract the INTO.
                    let text = s.query.to_string();
                    match top_level_clause_pos(&text) {
                        Some(pos) => write!(f, "{} INTO {}{}", &text[..pos], target, &text[pos..]),
                        None => write!(f, "{} INTO {}", text, target),
                    }
                }
            },
            Statement::Insert(i) => {
                if i.replace {
                    f.write_str("REPLACE ")?;
                } else {
                    f.write_str("INSERT ")?;
                    if i.low_priority {
                        f.write_str("LOW_PRIORITY ")?;
                    }
                    if i.ignore {
                        f.write_str("IGNORE ")?;
                    }
                }
                write!(f, "INTO {}", i.table)?;
                if !i.columns.is_empty() {
                    f.write_str(" (")?;
                    comma_sep_str(f, &i.columns)?;
                    f.write_str(")")?;
                }
                match &i.source {
                    InsertSource::Values(rows) => {
                        f.write_str(" VALUES ")?;
                        for (j, row) in rows.iter().enumerate() {
                            if j > 0 {
                                f.write_str(", ")?;
                            }
                            f.write_str("(")?;
                            comma_sep(f, row)?;
                            f.write_str(")")?;
                        }
                        Ok(())
                    }
                    InsertSource::Query(q) => write!(f, " {}", q),
                    InsertSource::DefaultValues => f.write_str(" DEFAULT VALUES"),
                }
            }
            Statement::Update(u) => {
                write!(f, "UPDATE {} SET ", u.table)?;
                for (i, (c, e)) in u.assignments.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{} = {}", c, e)?;
                }
                if let Some(w) = &u.where_ {
                    write!(f, " WHERE {}", w)?;
                }
                Ok(())
            }
            Statement::Delete(d) => {
                write!(f, "DELETE FROM {}", d.table)?;
                if let Some(w) = &d.where_ {
                    write!(f, " WHERE {}", w)?;
                }
                Ok(())
            }
            Statement::With(w) => {
                f.write_str("WITH ")?;
                for (i, cte) in w.ctes.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    match &cte.body {
                        CteBody::Query(q) => write!(f, "{} AS ({})", cte.name, q)?,
                        CteBody::Dml(s) => write!(f, "{} AS ({})", cte.name, s)?,
                    }
                }
                write!(f, " {}", w.body)
            }
            Statement::Values(rows) => {
                f.write_str("VALUES ")?;
                for (j, row) in rows.iter().enumerate() {
                    if j > 0 {
                        f.write_str(", ")?;
                    }
                    f.write_str("(")?;
                    comma_sep(f, row)?;
                    f.write_str(")")?;
                }
                Ok(())
            }
            Statement::Truncate { table } => write!(f, "TRUNCATE TABLE {}", table),
            Statement::Copy(c) => {
                f.write_str("COPY ")?;
                match &c.source {
                    CopySource::Table { name, columns } => {
                        f.write_str(name)?;
                        if !columns.is_empty() {
                            f.write_str(" (")?;
                            comma_sep_str(f, columns)?;
                            f.write_str(")")?;
                        }
                    }
                    CopySource::Query(q) => write!(f, "({})", q)?,
                }
                let dir = match c.direction {
                    CopyDirection::To => "TO",
                    CopyDirection::From => "FROM",
                };
                write!(f, " {} {}", dir, c.target)?;
                for opt in &c.options {
                    write!(f, " {}", opt)?;
                }
                Ok(())
            }
            Statement::Grant(g) => {
                write!(f, "GRANT {} ON {} TO {}", g.privilege, g.object, g.grantee)
            }
            Statement::Revoke(g) => {
                write!(f, "REVOKE {} ON {} FROM {}", g.privilege, g.object, g.grantee)
            }
            Statement::Begin => f.write_str("BEGIN"),
            Statement::StartTransaction => f.write_str("START TRANSACTION"),
            Statement::Commit => f.write_str("COMMIT"),
            Statement::End => f.write_str("END"),
            Statement::Rollback => f.write_str("ROLLBACK"),
            Statement::Abort => f.write_str("ABORT"),
            Statement::Savepoint(n) => write!(f, "SAVEPOINT {}", n),
            Statement::ReleaseSavepoint(n) => write!(f, "RELEASE SAVEPOINT {}", n),
            Statement::RollbackToSavepoint(n) => write!(f, "ROLLBACK TO SAVEPOINT {}", n),
            Statement::Set(s) => {
                f.write_str("SET ")?;
                if let Some(scope) = &s.scope {
                    if scope.starts_with("@@") {
                        // `SET @@SESSION.name = value`
                        return write!(f, "{}{} = {}", scope, s.name, s.value);
                    }
                    write!(f, "{} ", scope)?;
                }
                write!(f, "{} = {}", s.name, s.value)
            }
            Statement::Reset(n) => write!(f, "RESET {}", n),
            Statement::Show(n) => write!(f, "SHOW {}", n),
            Statement::Pragma { name, value } => {
                write!(f, "PRAGMA {}", name)?;
                if let Some(v) = value {
                    write!(f, " = {}", v)?;
                }
                Ok(())
            }
            Statement::Analyze(t) => {
                f.write_str("ANALYZE")?;
                if let Some(t) = t {
                    write!(f, " {}", t)?;
                }
                Ok(())
            }
            Statement::Vacuum { table, full } => {
                f.write_str("VACUUM")?;
                if *full {
                    f.write_str(" FULL")?;
                }
                if let Some(t) = table {
                    write!(f, " {}", t)?;
                }
                Ok(())
            }
            Statement::Explain(s) => write!(f, "EXPLAIN {}", s),
            Statement::Reindex(t) => {
                f.write_str("REINDEX")?;
                if let Some(t) = t {
                    write!(f, " TABLE {}", t)?;
                }
                Ok(())
            }
            Statement::Checkpoint => f.write_str("CHECKPOINT"),
            Statement::Cluster(t) => {
                f.write_str("CLUSTER")?;
                if let Some(t) = t {
                    write!(f, " {}", t)?;
                }
                Ok(())
            }
            Statement::Discard(what) => write!(f, "DISCARD {}", what),
            Statement::Listen(c) => write!(f, "LISTEN {}", c),
            Statement::Notify { channel, payload } => {
                write!(f, "NOTIFY {}", channel)?;
                if let Some(p) = payload {
                    write!(f, ", '{}'", p)?;
                }
                Ok(())
            }
            Statement::Unlisten(c) => write!(f, "UNLISTEN {}", c),
            Statement::LockTable { table, mode } => {
                write!(f, "LOCK TABLE {}", table)?;
                if let Some(m) = mode {
                    write!(f, " IN {} MODE", m)?;
                }
                Ok(())
            }
            Statement::Comment { object, name, text } => {
                write!(f, "COMMENT ON {} {} IS '{}'", object.keyword(), name, sql_escape(text))
            }
            Statement::Call { name, args } => {
                write!(f, "CALL {}(", name)?;
                comma_sep(f, args)?;
                f.write_str(")")
            }
            Statement::RefreshMatView(n) => write!(f, "REFRESH MATERIALIZED VIEW {}", n),
            Statement::Misc(m) => {
                f.write_str(m.kind.name())?;
                if let Some(a) = &m.arg {
                    write!(f, " {}", a)?;
                }
                Ok(())
            }
        }
    }
}

fn sql_escape(s: &str) -> String {
    s.replace('\'', "''")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn t1() -> CreateTable {
        CreateTable {
            name: "t1".into(),
            temporary: false,
            if_not_exists: false,
            columns: vec![ColumnDef::new("v1", DataType::Int), ColumnDef::new("v2", DataType::Int)],
            constraints: vec![],
        }
    }

    #[test]
    fn create_table_renders() {
        assert_eq!(Statement::CreateTable(t1()).to_string(), "CREATE TABLE t1 (v1 INT, v2 INT)");
    }

    #[test]
    fn insert_renders() {
        let s = Statement::Insert(Insert {
            table: "t1".into(),
            columns: vec![],
            source: InsertSource::Values(vec![vec![Expr::int(1), Expr::int(1)]]),
            ignore: false,
            replace: false,
            low_priority: false,
        });
        assert_eq!(s.to_string(), "INSERT INTO t1 VALUES (1, 1)");
    }

    #[test]
    fn replace_changes_kind() {
        let mut i = Insert {
            table: "t1".into(),
            columns: vec![],
            source: InsertSource::DefaultValues,
            ignore: false,
            replace: false,
            low_priority: false,
        };
        assert_eq!(Statement::Insert(i.clone()).kind().name(), "INSERT");
        i.replace = true;
        assert_eq!(Statement::Insert(i).kind().name(), "REPLACE");
    }

    #[test]
    fn select_star_renders() {
        let q = Query::star_from("t1");
        let s = Statement::Select(SelectStmt { query: Box::new(q), variant: SelectVariant::Plain });
        assert_eq!(s.to_string(), "SELECT * FROM t1");
        assert_eq!(s.kind().name(), "SELECT");
    }

    #[test]
    fn selectv_renders_and_kinds() {
        let q = Query::star_from("t1");
        let s =
            Statement::Select(SelectStmt { query: Box::new(q), variant: SelectVariant::SelectV });
        assert_eq!(s.to_string(), "SELECTV * FROM t1");
        assert_eq!(s.kind().name(), "SELECTV");
    }

    #[test]
    fn notify_and_rule_render_like_the_case_study() {
        let rule = Statement::CreateRule(CreateRule {
            name: "v1".into(),
            or_replace: true,
            table: "v0".into(),
            event: DmlEvent::Insert,
            instead: true,
            action: Some(Box::new(Statement::Notify {
                channel: "COMPRESSION".into(),
                payload: None,
            })),
        });
        assert_eq!(
            rule.to_string(),
            "CREATE OR REPLACE RULE v1 AS ON INSERT TO v0 DO INSTEAD NOTIFY COMPRESSION"
        );
    }

    #[test]
    fn with_dml_cte_renders() {
        let w = Statement::With(WithStmt {
            ctes: vec![Cte {
                name: "v2".into(),
                body: CteBody::Dml(Box::new(Statement::Insert(Insert {
                    table: "v0".into(),
                    columns: vec![],
                    source: InsertSource::Values(vec![vec![Expr::int(0)]]),
                    ignore: false,
                    replace: false,
                    low_priority: false,
                }))),
            }],
            body: Box::new(Statement::Delete(Delete {
                table: "v0".into(),
                where_: Some(Expr::eq(Expr::col("v3"), Expr::int(-48))),
            })),
        });
        assert_eq!(
            w.to_string(),
            "WITH v2 AS (INSERT INTO v0 VALUES (0)) DELETE FROM v0 WHERE (v3 = -48)"
        );
        assert_eq!(w.kind().name(), "WITH");
    }

    #[test]
    fn drop_trigger_on_table() {
        let d = Statement::Drop(DropStmt {
            object: ObjectKind::Trigger,
            if_exists: true,
            name: "tr".into(),
            on_table: Some("t1".into()),
        });
        assert_eq!(d.to_string(), "DROP TRIGGER IF EXISTS tr ON t1");
        assert_eq!(d.kind(), StmtKind::Ddl(DdlVerb::Drop, ObjectKind::Trigger));
    }

    #[test]
    fn generic_ddl_kind_roundtrip() {
        let g = Statement::GenericDdl(GenericDdl {
            verb: DdlVerb::Alter,
            object: ObjectKind::Sequence,
            name: "s1".into(),
            arg: None,
        });
        assert_eq!(g.to_string(), "ALTER SEQUENCE s1");
        assert_eq!(g.kind(), StmtKind::Ddl(DdlVerb::Alter, ObjectKind::Sequence));
    }

    #[test]
    fn misc_statement_renders_kind_name() {
        let m = Statement::Misc(MiscStmt { kind: StandaloneKind::ShowTables, arg: None });
        assert_eq!(m.to_string(), "SHOW TABLES");
    }

    #[test]
    fn set_session_var_renders_mysql_style() {
        let s = Statement::Set(SetStmt {
            scope: Some("@@SESSION.".into()),
            name: "explicit_for_timestamp".into(),
            value: "OFF".into(),
        });
        assert_eq!(s.to_string(), "SET @@SESSION.explicit_for_timestamp = OFF");
    }
}
