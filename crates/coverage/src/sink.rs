//! The cross-worker coverage sink: a lock-free atomic word map.
//!
//! Parallel campaigns used to funnel every shard sync through a single
//! `Mutex<GlobalCoverage>`, serializing all workers on one lock (and, under
//! oversubscription, donating whole scheduler quanta to convoying). The sink
//! replaces the lock with `MAP_WORDS` relaxed `AtomicU64`s:
//!
//! * Workers publish *deltas* — only the virgin words their local shard
//!   changed since the last sync (tracked by
//!   [`GlobalCoverage::drain_dirty_words`]) — with one `fetch_or` per
//!   changed word. A sync after a no-novelty epoch publishes nothing and
//!   performs zero atomic operations.
//! * `fetch_or` is commutative and idempotent, so the final sink state is
//!   the OR of every shard regardless of thread interleaving — the same
//!   determinism argument the old batched `union_with` made, minus the lock.
//!   Campaign results therefore stay a pure function of (worker seeds,
//!   worker count), never of scheduling.
//! * Novelty is still judged against each worker's *local* shard, so the
//!   sink is write-only during the run and collapsed once at the join.

use crate::{GlobalCoverage, MAP_WORDS};
use std::sync::atomic::{AtomicU64, Ordering};

pub struct CoverageSink {
    words: Vec<AtomicU64>,
}

impl Default for CoverageSink {
    fn default() -> Self {
        Self::new()
    }
}

impl CoverageSink {
    pub fn new() -> Self {
        Self { words: (0..MAP_WORDS).map(|_| AtomicU64::new(0)).collect() }
    }

    /// Publish the shard's changed-since-last-sync words (and clear its
    /// dirty set). Returns how many words were published; `0` means the
    /// epoch was novelty-free and the sync cost no atomics at all.
    pub fn publish_dirty(&self, shard: &mut GlobalCoverage) -> usize {
        shard.drain_dirty_words(|wi, w| {
            self.words[wi].fetch_or(w, Ordering::Relaxed);
        })
    }

    /// Publish the shard's entire virgin map (resume re-seeding, final
    /// flush safety). Zero source words are skipped.
    pub fn publish_all(&self, shard: &GlobalCoverage) {
        for wi in 0..MAP_WORDS {
            let w = shard.word(wi);
            if w != 0 {
                self.words[wi].fetch_or(w, Ordering::Relaxed);
            }
        }
    }

    /// Distinct edges currently in the sink (relaxed snapshot; exact once
    /// all workers have flushed).
    pub fn edges_covered(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).to_ne_bytes().iter().filter(|&&b| b != 0).count())
            .sum()
    }

    /// Collapse into a [`GlobalCoverage`] at the campaign join, after every
    /// worker has flushed its shard.
    pub fn into_global(self) -> GlobalCoverage {
        GlobalCoverage::from_words(self.words.into_iter().map(AtomicU64::into_inner))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CovRecorder, SiteId};

    fn run_with(sites: &[u64]) -> crate::CovMap {
        let mut r = CovRecorder::new();
        for &s in sites {
            r.hit(SiteId::from_raw(s));
        }
        r.into_map()
    }

    #[test]
    fn dirty_publish_matches_full_publish() {
        let mut a = GlobalCoverage::new();
        a.merge(&run_with(&[1, 2, 3, 900]));
        let sink_dirty = CoverageSink::new();
        let sink_full = CoverageSink::new();
        sink_full.publish_all(&a);
        let published = sink_dirty.publish_dirty(&mut a);
        assert!(published > 0);
        let g1 = sink_dirty.into_global();
        let g2 = sink_full.into_global();
        assert_eq!(g1.to_sparse(), g2.to_sparse());
        assert_eq!(g1.edges_covered(), g2.edges_covered());
    }

    #[test]
    fn second_dirty_publish_is_free() {
        let mut a = GlobalCoverage::new();
        a.merge(&run_with(&[5, 6, 7]));
        let sink = CoverageSink::new();
        assert!(sink.publish_dirty(&mut a) > 0);
        // Nothing changed since: the epoch-batched sync publishes nothing.
        assert_eq!(sink.publish_dirty(&mut a), 0);
        // Re-merging an already-seen run changes nothing either.
        a.merge(&run_with(&[5, 6, 7]));
        assert_eq!(sink.publish_dirty(&mut a), 0);
    }

    #[test]
    fn sink_matches_mutex_union_semantics() {
        // Two shards with overlapping coverage, published in either order,
        // collapse to the same global the old Mutex<GlobalCoverage> union
        // produced.
        let runs = [run_with(&[1, 2, 3]), run_with(&[3, 4, 5, 65_000]), run_with(&[1, 9])];
        let mut serial = GlobalCoverage::new();
        for r in &runs {
            serial.merge(r);
        }
        let mut a = GlobalCoverage::new();
        a.merge(&runs[0]);
        let mut b = GlobalCoverage::new();
        b.merge(&runs[1]);
        b.merge(&runs[2]);
        let sink = CoverageSink::new();
        sink.publish_dirty(&mut b);
        sink.publish_dirty(&mut a);
        let global = sink.into_global();
        assert_eq!(global.edges_covered(), serial.edges_covered());
        assert_eq!(global.to_sparse(), serial.to_sparse());
    }

    #[test]
    fn resumed_shard_republishes_through_from_sparse() {
        let mut a = GlobalCoverage::new();
        a.merge(&run_with(&[10, 20, 30]));
        let dump = a.to_sparse();
        // A resumed worker rebuilds its shard from the checkpoint dump; the
        // restored edges are dirty, so the first sync re-seeds the sink.
        let mut resumed = GlobalCoverage::from_sparse(&dump);
        let sink = CoverageSink::new();
        assert!(sink.publish_dirty(&mut resumed) > 0);
        assert_eq!(sink.into_global().to_sparse(), dump);
    }
}
