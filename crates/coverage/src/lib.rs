#![forbid(unsafe_code)]

//! AFL++-style edge-coverage instrumentation for the simulated DBMS engines.
//!
//! The paper's LEGO is built on AFL++, whose feedback signal is a 64 KiB
//! shared-memory byte map: every executed control-flow *edge* `(prev, cur)`
//! increments `map[hash(prev, cur)]`, and hit counts are bucketed into power-
//! of-two classes before novelty comparison. This crate reproduces those
//! semantics in-process:
//!
//! * [`site_id!`] assigns a stable pseudo-random id to each instrumentation
//!   point at compile time (FNV-1a over `file!()`/`line!()`/`column!()`),
//!   mirroring AFL's random block ids.
//! * [`CovRecorder`] is carried through one execution and folds edges into a
//!   fresh [`CovMap`].
//! * [`GlobalCoverage`] is the corpus-level accumulator that answers the only
//!   question a coverage-guided fuzzer asks: *did this run hit anything new?*

pub mod map;
pub mod recorder;
pub mod sink;

pub use map::{bucket, bucket_word, CovMap, BUCKET_LUT, MAP_SIZE};
pub use recorder::{CovRecorder, SiteId};
pub use sink::CoverageSink;

/// Number of 8-byte words in the virgin map.
pub const MAP_WORDS: usize = MAP_SIZE / 8;

/// Above this many touched edges, [`GlobalCoverage::merge`] switches from
/// sparse per-edge classification to the AFL++-style sequential word scan:
/// the word scan reads all `MAP_WORDS` words but in cache-friendly order and
/// 8 lanes at a time, which overtakes random-access sparse walks once a run
/// touches a nontrivial fraction of the map.
pub const WORD_SCAN_MIN_EDGES: usize = 1024;

/// Corpus-level coverage accounting with AFL hit-count bucketing.
///
/// `virgin[i]` holds the OR of all *bucketed* counts ever observed for edge
/// `i`. A run is "interesting" (new coverage) if it sets any bucket bit that
/// was never set before — exactly AFL++'s `has_new_bits`.
#[derive(Clone)]
pub struct GlobalCoverage {
    virgin: Box<[u8]>,
    edges_covered: usize,
    /// One bit per 8-byte virgin word that changed since the last
    /// [`GlobalCoverage::drain_dirty_words`] — the epoch-batched delta a
    /// parallel worker publishes to the shared [`CoverageSink`]. Serial
    /// campaigns never drain it; setting bits costs one OR per *changed*
    /// word, so the common no-novelty execution touches it not at all.
    dirty: Box<[u64]>,
}

const DIRTY_WORDS: usize = MAP_WORDS / 64;

impl Default for GlobalCoverage {
    fn default() -> Self {
        Self::new()
    }
}

impl GlobalCoverage {
    pub fn new() -> Self {
        Self {
            virgin: vec![0u8; MAP_SIZE].into_boxed_slice(),
            edges_covered: 0,
            dirty: vec![0u64; DIRTY_WORDS].into_boxed_slice(),
        }
    }

    #[inline]
    fn mark_dirty(&mut self, word: usize) {
        self.dirty[word >> 6] |= 1u64 << (word & 63);
    }

    /// Merge one execution's map; returns `true` if any new bucket bit (and
    /// therefore new behaviour) was observed.
    ///
    /// Dispatches between the sparse per-edge walk (typical SQL cases touch
    /// a few hundred edges) and the AFL++-style sequential word scan
    /// ([`GlobalCoverage::merge_words`]) for dense runs; both compute the
    /// identical result (pinned by property tests in `tests/word_sparse.rs`).
    pub fn merge(&mut self, run: &CovMap) -> bool {
        if run.edge_count() >= WORD_SCAN_MIN_EDGES {
            self.merge_words(run)
        } else {
            self.merge_sparse(run)
        }
    }

    /// Sparse path: classify and compare only the edges the run touched.
    pub fn merge_sparse(&mut self, run: &CovMap) -> bool {
        let mut new = false;
        for (i, &raw) in run.iter_nonzero() {
            let b = bucket(raw);
            let v = self.virgin[i];
            if v & b != b {
                if v == 0 {
                    self.edges_covered += 1;
                }
                self.virgin[i] = v | b;
                self.mark_dirty(i >> 3);
                new = true;
            }
        }
        new
    }

    /// Word path: scan the run's raw counts 8 bytes at a time, skip all-zero
    /// words with one compare, classify nonzero words through the bucket
    /// LUT, and OR into the virgin map — AFL++'s `has_new_bits` +
    /// `classify_counts` fused into one pass.
    pub fn merge_words(&mut self, run: &CovMap) -> bool {
        let mut new = false;
        let mut added = 0usize;
        for (wi, (dst, src)) in
            self.virgin.chunks_exact_mut(8).zip(run.counts().chunks_exact(8)).enumerate()
        {
            let s = u64::from_ne_bytes(src.try_into().expect("8-byte chunk"));
            if s == 0 {
                continue;
            }
            let c = bucket_word(src);
            let d = u64::from_ne_bytes((&*dst).try_into().expect("8-byte chunk"));
            let m = d | c;
            if m != d {
                let cls = c.to_ne_bytes();
                for k in 0..8 {
                    if dst[k] == 0 && cls[k] != 0 {
                        added += 1;
                    }
                }
                dst.copy_from_slice(&m.to_ne_bytes());
                self.dirty[wi >> 6] |= 1u64 << (wi & 63);
                new = true;
            }
        }
        self.edges_covered += added;
        new
    }

    /// Check for novelty without recording it.
    pub fn would_be_new(&self, run: &CovMap) -> bool {
        run.iter_nonzero().any(|(i, &raw)| self.virgin[i] & bucket(raw) != bucket(raw))
    }

    /// Union another accumulator into this one, word at a time.
    ///
    /// This is the parallel-campaign sync path: worker shards batch their
    /// local virgin maps into the shared global every K cases, so the scan
    /// runs over 8-byte words and skips all-zero source words instead of
    /// walking individual edges. The operation is commutative and
    /// idempotent, which makes the merged result independent of worker
    /// interleaving.
    pub fn union_with(&mut self, other: &GlobalCoverage) {
        let mut added = 0usize;
        for (wi, (dst, src)) in
            self.virgin.chunks_exact_mut(8).zip(other.virgin.chunks_exact(8)).enumerate()
        {
            let s = u64::from_ne_bytes(src.try_into().expect("8-byte chunk"));
            if s == 0 {
                continue;
            }
            let d = u64::from_ne_bytes((&*dst).try_into().expect("8-byte chunk"));
            let m = d | s;
            if m != d {
                for k in 0..8 {
                    if dst[k] == 0 && src[k] != 0 {
                        added += 1;
                    }
                }
                dst.copy_from_slice(&m.to_ne_bytes());
                self.dirty[wi >> 6] |= 1u64 << (wi & 63);
            }
        }
        self.edges_covered += added;
    }

    /// OR a sparse dump into this accumulator (the parallel join unions
    /// worker snapshot dumps without materializing 64 KiB maps first).
    pub fn union_sparse(&mut self, entries: &[(usize, u8)]) {
        for &(i, v) in entries {
            if i >= MAP_SIZE || v == 0 {
                continue;
            }
            let d = self.virgin[i];
            if d | v != d {
                if d == 0 {
                    self.edges_covered += 1;
                }
                self.virgin[i] = d | v;
                self.mark_dirty(i >> 3);
            }
        }
    }

    /// Visit and clear every virgin word changed since the last drain: the
    /// delta a worker publishes to the shared sink. Costs a 128-word bitmap
    /// scan when nothing changed — the lock-free common path of the
    /// epoch-batched sync.
    pub fn drain_dirty_words(&mut self, mut f: impl FnMut(usize, u64)) -> usize {
        let mut published = 0usize;
        for di in 0..DIRTY_WORDS {
            let mut bits = self.dirty[di];
            if bits == 0 {
                continue;
            }
            self.dirty[di] = 0;
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let wi = (di << 6) | bit;
                f(wi, self.word(wi));
                published += 1;
            }
        }
        published
    }

    /// The `wi`-th 8-byte word of the virgin map.
    #[inline]
    pub fn word(&self, wi: usize) -> u64 {
        u64::from_ne_bytes(self.virgin[wi * 8..wi * 8 + 8].try_into().expect("8-byte chunk"))
    }

    /// Rebuild from raw virgin words (the sink's collapse at campaign join).
    pub(crate) fn from_words(words: impl Iterator<Item = u64>) -> Self {
        let mut g = Self::new();
        let mut edges = 0usize;
        for (wi, w) in words.enumerate().take(MAP_WORDS) {
            if w == 0 {
                continue;
            }
            let bytes = w.to_ne_bytes();
            edges += bytes.iter().filter(|&&b| b != 0).count();
            g.virgin[wi * 8..wi * 8 + 8].copy_from_slice(&bytes);
            g.mark_dirty(wi);
        }
        g.edges_covered = edges;
        g
    }

    /// Number of distinct edges seen at least once — the "branches covered"
    /// metric of the paper's Figure 9 / Table IV.
    pub fn edges_covered(&self) -> usize {
        self.edges_covered
    }

    /// Reset to the virgin state.
    pub fn clear(&mut self) {
        self.virgin.iter_mut().for_each(|b| *b = 0);
        self.dirty.iter_mut().for_each(|b| *b = 0);
        self.edges_covered = 0;
    }

    /// Sparse `(edge index, bucket bits)` dump of the virgin map, in index
    /// order. Campaign checkpoints persist this instead of the raw 64 KiB
    /// map: covered edges are a small fraction of `MAP_SIZE`.
    pub fn to_sparse(&self) -> Vec<(usize, u8)> {
        self.virgin.iter().enumerate().filter(|(_, &v)| v != 0).map(|(i, &v)| (i, v)).collect()
    }

    /// Rebuild an accumulator from a [`GlobalCoverage::to_sparse`] dump.
    /// Out-of-range indexes are ignored (corrupt checkpoints fail novelty
    /// checks rather than panicking). Restored edges count as dirty, so a
    /// resumed worker's first sync re-publishes them to the sink.
    pub fn from_sparse(entries: &[(usize, u8)]) -> Self {
        let mut g = Self::new();
        g.union_sparse(entries);
        g
    }
}

/// Compile-time instrumentation-site id.
///
/// Expands to a constant [`SiteId`] unique (with overwhelming probability) to
/// the source location, so `cov!(ctx)` call sites behave like AFL++'s
/// compile-time basic-block ids.
#[macro_export]
macro_rules! site_id {
    () => {{
        const ID: $crate::SiteId = $crate::SiteId::from_location(file!(), line!(), column!());
        ID
    }};
}

/// Record a coverage hit at this source location on recorder expression `$ctx`
/// (anything with a `.cov()` accessor returning `&mut CovRecorder`, or a
/// `CovRecorder` itself via `cov_raw!`).
#[macro_export]
macro_rules! cov {
    ($rec:expr) => {{
        let id = $crate::site_id!();
        $rec.hit(id);
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_with(sites: &[u64]) -> CovMap {
        let mut r = CovRecorder::new();
        for &s in sites {
            r.hit(SiteId::from_raw(s));
        }
        r.into_map()
    }

    #[test]
    fn fresh_global_has_no_coverage() {
        let g = GlobalCoverage::new();
        assert_eq!(g.edges_covered(), 0);
    }

    #[test]
    fn first_run_is_always_new() {
        let mut g = GlobalCoverage::new();
        assert!(g.merge(&run_with(&[1, 2, 3])));
        assert!(g.edges_covered() > 0);
    }

    #[test]
    fn identical_run_is_not_new() {
        let mut g = GlobalCoverage::new();
        let m = run_with(&[1, 2, 3]);
        assert!(g.merge(&m));
        assert!(!g.merge(&m));
        assert!(!g.would_be_new(&m));
    }

    #[test]
    fn different_edge_order_is_new_coverage() {
        // Edges are (prev, cur) pairs, so visiting the same sites in a
        // different order produces different edges — the property that makes
        // SQL *sequences* matter.
        let mut g = GlobalCoverage::new();
        g.merge(&run_with(&[10, 20, 30]));
        assert!(g.would_be_new(&run_with(&[30, 20, 10])));
    }

    #[test]
    fn hit_count_bucket_changes_are_new() {
        let mut g = GlobalCoverage::new();
        g.merge(&run_with(&[7, 8]));
        // Same edges but one edge hit many more times -> new bucket.
        let mut r = CovRecorder::new();
        for _ in 0..10 {
            r.hit(SiteId::from_raw(7));
            r.hit(SiteId::from_raw(8));
        }
        assert!(g.merge(&r.into_map()));
    }

    #[test]
    fn clear_resets_everything() {
        let mut g = GlobalCoverage::new();
        g.merge(&run_with(&[1]));
        g.clear();
        assert_eq!(g.edges_covered(), 0);
        assert!(g.would_be_new(&run_with(&[1])));
    }

    #[test]
    fn union_matches_sequential_merges() {
        let runs = [run_with(&[1, 2, 3]), run_with(&[3, 4, 5, 900]), run_with(&[1, 7, 65_000])];
        // Sequential merging into one accumulator…
        let mut serial = GlobalCoverage::new();
        for r in &runs {
            serial.merge(r);
        }
        // …vs. merging into per-worker shards and unioning, in either order.
        let mut a = GlobalCoverage::new();
        a.merge(&runs[0]);
        let mut b = GlobalCoverage::new();
        b.merge(&runs[1]);
        b.merge(&runs[2]);
        let mut ab = a.clone();
        ab.union_with(&b);
        let mut ba = b.clone();
        ba.union_with(&a);
        for g in [&ab, &ba] {
            assert_eq!(g.edges_covered(), serial.edges_covered());
            for r in &runs {
                assert!(!g.would_be_new(r));
            }
        }
    }

    #[test]
    fn union_is_idempotent() {
        let mut a = GlobalCoverage::new();
        a.merge(&run_with(&[5, 6]));
        let n = a.edges_covered();
        let snapshot = a.clone();
        a.union_with(&snapshot);
        assert_eq!(a.edges_covered(), n);
    }

    #[test]
    fn edges_covered_counts_distinct_edges() {
        let mut g = GlobalCoverage::new();
        g.merge(&run_with(&[1, 2]));
        let n = g.edges_covered();
        // Re-merging the same map adds nothing.
        g.merge(&run_with(&[1, 2]));
        assert_eq!(g.edges_covered(), n);
    }

    #[test]
    fn sparse_roundtrip_is_lossless() {
        let mut g = GlobalCoverage::new();
        g.merge(&run_with(&[1, 2, 3, 900, 65_000]));
        g.merge(&run_with(&[3, 2, 1]));
        let entries = g.to_sparse();
        assert!(!entries.is_empty());
        assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "index-ordered");
        let back = GlobalCoverage::from_sparse(&entries);
        assert_eq!(back.edges_covered(), g.edges_covered());
        assert_eq!(back.to_sparse(), entries);
        assert!(!back.would_be_new(&run_with(&[1, 2, 3])));
    }

    #[test]
    fn from_sparse_ignores_out_of_range_entries() {
        let g = GlobalCoverage::from_sparse(&[(MAP_SIZE + 7, 1), (3, 2)]);
        assert_eq!(g.edges_covered(), 1);
    }

    #[test]
    fn site_id_macro_is_stable_per_location() {
        fn one() -> SiteId {
            site_id!()
        }
        assert_eq!(one(), one());
    }

    #[test]
    fn site_id_macro_differs_across_locations() {
        let a = site_id!();
        let b = site_id!();
        assert_ne!(a, b);
    }
}
