//! Per-execution edge recorder.

use crate::map::{CovMap, MAP_SIZE};

/// A stable identifier for one instrumentation point in the engine source.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SiteId(u64);

impl SiteId {
    /// FNV-1a over the source coordinates, evaluated at compile time by the
    /// [`crate::site_id!`] macro.
    pub const fn from_location(file: &str, line: u32, column: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let bytes = file.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            h ^= bytes[i] as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
            i += 1;
        }
        h ^= line as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
        h ^= column as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
        SiteId(h)
    }

    /// Construct from an arbitrary value (tests, synthetic sites such as
    /// per-statement-kind virtual branches).
    pub const fn from_raw(v: u64) -> Self {
        SiteId(v)
    }

    /// Derive a related site, e.g. one per enum discriminant at a single
    /// `cov_n!`-style call site.
    pub const fn with_index(self, idx: u64) -> Self {
        SiteId(self.0.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(idx))
    }

    pub const fn raw(self) -> u64 {
        self.0
    }
}

/// Records the AFL edge trace of a single test-case execution.
///
/// Mirrors AFL++'s instrumentation:
/// ```c
/// map[cur ^ prev]++; prev = cur >> 1;
/// ```
pub struct CovRecorder {
    map: CovMap,
    prev: u64,
}

impl Default for CovRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl CovRecorder {
    pub fn new() -> Self {
        Self { map: CovMap::new(), prev: 0 }
    }

    /// Build a recorder on top of a recycled map, clearing it in place so
    /// the 64 KiB counts allocation is reused instead of re-zeroed from a
    /// fresh heap block (the campaign hot path runs one map per case).
    pub fn from_recycled(mut map: CovMap) -> Self {
        map.clear();
        Self { map, prev: 0 }
    }

    #[inline]
    pub fn hit(&mut self, site: SiteId) {
        let cur = site.0 as usize & (MAP_SIZE - 1);
        self.map.bump(cur ^ self.prev as usize);
        self.prev = (cur >> 1) as u64;
    }

    /// Reset the edge chain at a statement boundary so edges never span two
    /// statements of the same script in a misleading way. (AFL++ resets prev
    /// at function entry of the persistent-mode loop.)
    pub fn reset_edge_chain(&mut self) {
        self.prev = 0;
    }

    pub fn map(&self) -> &CovMap {
        &self.map
    }

    pub fn into_map(self) -> CovMap {
        self.map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_depend_on_predecessor() {
        let a = SiteId::from_raw(100);
        let b = SiteId::from_raw(200);
        let mut r1 = CovRecorder::new();
        r1.hit(a);
        r1.hit(b);
        let mut r2 = CovRecorder::new();
        r2.hit(b);
        r2.hit(a);
        assert_ne!(r1.into_map().digest(), r2.into_map().digest());
    }

    #[test]
    fn reset_edge_chain_restores_entry_edge() {
        let a = SiteId::from_raw(7);
        let mut r1 = CovRecorder::new();
        r1.hit(a);
        let mut r2 = CovRecorder::new();
        r2.hit(SiteId::from_raw(9));
        r2.reset_edge_chain();
        r2.hit(a);
        // After the chain reset, hitting `a` produces the same entry edge as a
        // fresh recorder.
        let m1 = r1.into_map();
        let m2 = r2.into_map();
        // Entry edge: prev_loc is 0 after reset, so the edge index is the site.
        let entry_edge = 7usize;
        assert_eq!(m1.get(entry_edge), 1);
        assert_eq!(m2.get(entry_edge), 1);
    }

    #[test]
    fn with_index_generates_distinct_sites() {
        let base = SiteId::from_raw(5);
        assert_ne!(base.with_index(0), base.with_index(1));
        assert_ne!(base.with_index(0), base);
    }

    #[test]
    fn from_location_is_deterministic() {
        let a = SiteId::from_location("x.rs", 1, 2);
        let b = SiteId::from_location("x.rs", 1, 2);
        assert_eq!(a, b);
        assert_ne!(a, SiteId::from_location("x.rs", 1, 3));
        assert_ne!(a, SiteId::from_location("y.rs", 1, 2));
    }
}
