//! The per-execution coverage map.

/// Size of the edge map. AFL++ defaults to 64 KiB; we keep the same size so
/// collision behaviour is comparable.
pub const MAP_SIZE: usize = 1 << 16;

/// One execution's edge-hit counts, indexed by `edge_hash % MAP_SIZE`.
#[derive(Clone)]
pub struct CovMap {
    counts: Box<[u8]>,
    /// Indices with nonzero counts. `bump` pushes an index only on its
    /// 0→1 transition, so the list is duplicate-free by construction. SQL
    /// test cases touch a few hundred edges out of 65536, so sparse
    /// iteration is the hot path for merging.
    touched: Vec<u32>,
}

impl Default for CovMap {
    fn default() -> Self {
        Self::new()
    }
}

impl CovMap {
    pub fn new() -> Self {
        Self { counts: vec![0u8; MAP_SIZE].into_boxed_slice(), touched: Vec::new() }
    }

    #[inline]
    pub fn bump(&mut self, index: usize) {
        let i = index & (MAP_SIZE - 1);
        let c = &mut self.counts[i];
        if *c == 0 {
            self.touched.push(i as u32);
        }
        *c = c.saturating_add(1);
    }

    /// Iterate `(index, &count)` over nonzero entries.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, &u8)> + '_ {
        self.touched.iter().map(move |&i| (i as usize, &self.counts[i as usize]))
    }

    /// The raw count array, for word-at-a-time scans (`MAP_SIZE` bytes).
    pub fn counts(&self) -> &[u8] {
        &self.counts
    }

    /// Number of distinct edges hit in this run.
    pub fn edge_count(&self) -> usize {
        self.touched.len()
    }

    pub fn get(&self, index: usize) -> u8 {
        self.counts[index & (MAP_SIZE - 1)]
    }

    /// Reset in place, keeping the allocation (AFL's per-run memset, but
    /// sparse).
    pub fn clear(&mut self) {
        for &i in &self.touched {
            self.counts[i as usize] = 0;
        }
        self.touched.clear();
    }

    /// A stable 64-bit digest of the bucketed map — used to group executions
    /// with identical coverage signatures (crash dedup secondary key).
    ///
    /// Each `(index, bucket)` entry is mixed independently and the results
    /// combined with a commutative fold, so the digest is order-insensitive
    /// without cloning and sorting `touched`.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &i in &self.touched {
            let b = super::bucket(self.counts[i as usize]);
            h = h.wrapping_add(mix64((i as u64) << 8 | b as u64));
        }
        h
    }
}

/// SplitMix64 finalizer: a cheap bijective scramble so per-entry values are
/// well distributed before the commutative combine in [`CovMap::digest`].
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// AFL++ hit-count bucketing: collapse raw counts into 8 classes so loops
/// don't generate endless "novelty".
#[inline]
pub fn bucket(count: u8) -> u8 {
    BUCKET_LUT[count as usize]
}

/// The bucketing function as a 256-entry table — AFL++'s `count_class_lookup`
/// — so word-at-a-time classification pays one indexed load per byte instead
/// of a branch tree.
pub static BUCKET_LUT: [u8; 256] = build_bucket_lut();

const fn build_bucket_lut() -> [u8; 256] {
    let mut lut = [0u8; 256];
    let mut c = 0usize;
    while c < 256 {
        lut[c] = match c {
            0 => 0,
            1 => 1,
            2 => 2,
            3 => 4,
            4..=7 => 8,
            8..=15 => 16,
            16..=31 => 32,
            32..=127 => 64,
            _ => 128,
        };
        c += 1;
    }
    lut
}

/// Classify one 8-lane word of raw counts into bucket classes. A zero word
/// stays zero, which is what lets virgin-map scans skip untouched regions
/// with a single compare.
#[inline]
pub fn bucket_word(src: &[u8]) -> u64 {
    debug_assert_eq!(src.len(), 8);
    let mut cls = [0u8; 8];
    let mut k = 0;
    while k < 8 {
        cls[k] = BUCKET_LUT[src[k] as usize];
        k += 1;
    }
    u64::from_ne_bytes(cls)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_get() {
        let mut m = CovMap::new();
        m.bump(42);
        m.bump(42);
        assert_eq!(m.get(42), 2);
        assert_eq!(m.edge_count(), 1);
    }

    #[test]
    fn index_wraps_to_map_size() {
        let mut m = CovMap::new();
        m.bump(MAP_SIZE + 5);
        assert_eq!(m.get(5), 1);
    }

    #[test]
    fn counts_saturate() {
        let mut m = CovMap::new();
        for _ in 0..300 {
            m.bump(1);
        }
        assert_eq!(m.get(1), 255);
    }

    #[test]
    fn clear_keeps_reuse_correct() {
        let mut m = CovMap::new();
        m.bump(3);
        m.clear();
        assert_eq!(m.edge_count(), 0);
        assert_eq!(m.get(3), 0);
        m.bump(4);
        assert_eq!(m.edge_count(), 1);
    }

    #[test]
    fn bucket_classes_match_afl() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 4);
        assert_eq!(bucket(5), 8);
        assert_eq!(bucket(9), 16);
        assert_eq!(bucket(20), 32);
        assert_eq!(bucket(100), 64);
        assert_eq!(bucket(200), 128);
    }

    #[test]
    fn digest_is_order_insensitive_but_content_sensitive() {
        let mut a = CovMap::new();
        a.bump(1);
        a.bump(9);
        let mut b = CovMap::new();
        b.bump(9);
        b.bump(1);
        assert_eq!(a.digest(), b.digest());
        b.bump(2);
        assert_ne!(a.digest(), b.digest());
    }
}
