//! The per-execution coverage map.

/// Size of the edge map. AFL++ defaults to 64 KiB; we keep the same size so
/// collision behaviour is comparable.
pub const MAP_SIZE: usize = 1 << 16;

/// One execution's edge-hit counts, indexed by `edge_hash % MAP_SIZE`.
#[derive(Clone)]
pub struct CovMap {
    counts: Box<[u8]>,
    /// Indices with nonzero counts, kept sorted & deduped on demand. SQL test
    /// cases touch a few hundred edges out of 65536, so sparse iteration is
    /// the hot path for merging.
    touched: Vec<u32>,
    dirty: bool,
}

impl Default for CovMap {
    fn default() -> Self {
        Self::new()
    }
}

impl CovMap {
    pub fn new() -> Self {
        Self {
            counts: vec![0u8; MAP_SIZE].into_boxed_slice(),
            touched: Vec::new(),
            dirty: false,
        }
    }

    #[inline]
    pub fn bump(&mut self, index: usize) {
        let i = index & (MAP_SIZE - 1);
        let c = &mut self.counts[i];
        if *c == 0 {
            self.touched.push(i as u32);
        } else {
            self.dirty = true; // duplicates may appear only when revisiting
        }
        *c = c.saturating_add(1);
    }

    fn normalize(&mut self) {
        if self.dirty {
            self.touched.sort_unstable();
            self.touched.dedup();
            self.dirty = false;
        }
    }

    /// Iterate `(index, &count)` over nonzero entries.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, &u8)> + '_ {
        // `touched` may contain duplicates only transiently; bump() pushes an
        // index at most once (guarded by count==0), so no normalize needed for
        // reads. normalize() retained for future mutation APIs.
        self.touched.iter().map(move |&i| (i as usize, &self.counts[i as usize]))
    }

    /// Number of distinct edges hit in this run.
    pub fn edge_count(&self) -> usize {
        self.touched.len()
    }

    pub fn get(&self, index: usize) -> u8 {
        self.counts[index & (MAP_SIZE - 1)]
    }

    /// Reset in place, keeping the allocation (AFL's per-run memset, but
    /// sparse).
    pub fn clear(&mut self) {
        self.normalize();
        for &i in &self.touched {
            self.counts[i as usize] = 0;
        }
        self.touched.clear();
    }

    /// A stable 64-bit digest of the bucketed map — used to group executions
    /// with identical coverage signatures (crash dedup secondary key).
    pub fn digest(&self) -> u64 {
        let mut idx: Vec<u32> = self.touched.clone();
        idx.sort_unstable();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for i in idx {
            let b = super::bucket(self.counts[i as usize]);
            h ^= (i as u64) << 8 | b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

/// AFL++ hit-count bucketing: collapse raw counts into 8 classes so loops
/// don't generate endless "novelty".
#[inline]
pub fn bucket(count: u8) -> u8 {
    match count {
        0 => 0,
        1 => 1,
        2 => 2,
        3 => 4,
        4..=7 => 8,
        8..=15 => 16,
        16..=31 => 32,
        32..=127 => 64,
        _ => 128,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_get() {
        let mut m = CovMap::new();
        m.bump(42);
        m.bump(42);
        assert_eq!(m.get(42), 2);
        assert_eq!(m.edge_count(), 1);
    }

    #[test]
    fn index_wraps_to_map_size() {
        let mut m = CovMap::new();
        m.bump(MAP_SIZE + 5);
        assert_eq!(m.get(5), 1);
    }

    #[test]
    fn counts_saturate() {
        let mut m = CovMap::new();
        for _ in 0..300 {
            m.bump(1);
        }
        assert_eq!(m.get(1), 255);
    }

    #[test]
    fn clear_keeps_reuse_correct() {
        let mut m = CovMap::new();
        m.bump(3);
        m.clear();
        assert_eq!(m.edge_count(), 0);
        assert_eq!(m.get(3), 0);
        m.bump(4);
        assert_eq!(m.edge_count(), 1);
    }

    #[test]
    fn bucket_classes_match_afl() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 4);
        assert_eq!(bucket(5), 8);
        assert_eq!(bucket(9), 16);
        assert_eq!(bucket(20), 32);
        assert_eq!(bucket(100), 64);
        assert_eq!(bucket(200), 128);
    }

    #[test]
    fn digest_is_order_insensitive_but_content_sensitive() {
        let mut a = CovMap::new();
        a.bump(1);
        a.bump(9);
        let mut b = CovMap::new();
        b.bump(9);
        b.bump(1);
        assert_eq!(a.digest(), b.digest());
        b.bump(2);
        assert_ne!(a.digest(), b.digest());
    }
}
