//! Exhaustive schedule-space model check of the lock-free [`CoverageSink`].
//!
//! The sink's correctness argument is that every cross-thread interaction is
//! a single relaxed `fetch_or` on one `AtomicU64`, and `fetch_or` is
//! commutative and idempotent — so the collapsed map is the OR of every
//! shard under *any* interleaving, and a mid-run `edges_covered` snapshot is
//! always a subset of the final map. Plain threaded tests only ever witness
//! the handful of schedules the OS happens to produce; this harness instead
//! checks the claim over **every** interleaving.
//!
//! The harness is loom-style, not loom-backed: the vendored dependency set
//! has no `loom` crate, so instead of intercepting atomics we exploit the
//! sink's structure. `publish_dirty` is a loop of independent per-word
//! `fetch_or` calls with no cross-word invariant, so an interleaving of two
//! publishes is exactly an interleaving of their single-word steps. We split
//! every worker's sync into single-word publishes (each one real
//! `CoverageSink::publish_dirty` call over the worker's real, persistent
//! `GlobalCoverage` shard — the production merge→drain-dirty→publish path),
//! enumerate every schedule of those atomic steps, and assert the
//! determinism contract on each. Gated behind the `loom` feature to keep
//! the exhaustive sweep out of default test runs:
//!
//! ```text
//! cargo test -p lego-coverage --features loom
//! ```
#![cfg(feature = "loom")]

use lego_coverage::{CovRecorder, CoverageSink, GlobalCoverage, SiteId};

/// A worker's script: each step merges one single-word run into the
/// worker's persistent local shard and publishes the dirty delta — one
/// atomic `fetch_or` (or zero, when the merge found nothing new: the
/// idempotence case the epoch-batching optimization leans on).
type Script = Vec<Vec<u64>>;

fn run_with(sites: &[u64]) -> lego_coverage::CovMap {
    let mut r = CovRecorder::new();
    for &s in sites {
        r.hit(SiteId::from_raw(s));
    }
    r.into_map()
}

/// Execute one schedule (a sequence of worker indexes) against a fresh sink
/// with fresh per-worker shards, returning the collapsed result. Asserts
/// mid-run monotonicity: a snapshot never exceeds a later snapshot.
fn execute(schedule: &[usize], scripts: &[Script]) -> Vec<(usize, u8)> {
    let sink = CoverageSink::new();
    let mut shards: Vec<GlobalCoverage> = scripts.iter().map(|_| GlobalCoverage::new()).collect();
    let mut steps: Vec<usize> = vec![0; scripts.len()];
    let mut last_edges = 0usize;
    for &w in schedule {
        let sites = &scripts[w][steps[w]];
        steps[w] += 1;
        shards[w].merge(&run_with(sites));
        sink.publish_dirty(&mut shards[w]);
        let edges = sink.edges_covered();
        assert!(edges >= last_edges, "sink shrank mid-run: {last_edges} -> {edges}");
        last_edges = edges;
    }
    sink.into_global().to_sparse()
}

/// Enumerate every interleaving of the workers' scripts (all orderings that
/// preserve each worker's program order) and run `check` on each schedule.
fn for_each_schedule(scripts: &[Script], check: &mut dyn FnMut(&[usize])) {
    fn recurse(
        remaining: &mut [usize],
        prefix: &mut Vec<usize>,
        total: usize,
        check: &mut dyn FnMut(&[usize]),
    ) {
        if prefix.len() == total {
            check(prefix);
            return;
        }
        for w in 0..remaining.len() {
            if remaining[w] == 0 {
                continue;
            }
            remaining[w] -= 1;
            prefix.push(w);
            recurse(remaining, prefix, total, check);
            prefix.pop();
            remaining[w] += 1;
        }
    }
    let mut remaining: Vec<usize> = scripts.iter().map(Vec::len).collect();
    let total: usize = remaining.iter().sum();
    recurse(&mut remaining, &mut Vec::with_capacity(total), total, check);
}

/// The sequential reference: merge every run of every script into one map.
fn serial_union(scripts: &[Script]) -> Vec<(usize, u8)> {
    let mut g = GlobalCoverage::new();
    for script in scripts {
        for sites in script {
            g.merge(&run_with(sites));
        }
    }
    g.to_sparse()
}

fn check_all_schedules_converge(scripts: &[Script]) {
    let expect = serial_union(scripts);
    let mut schedules = 0usize;
    for_each_schedule(scripts, &mut |schedule| {
        schedules += 1;
        let got = execute(schedule, scripts);
        assert_eq!(got, expect, "schedule {schedule:?} diverged from the serial union");
    });
    assert!(schedules > 1, "degenerate model: only {schedules} schedule(s)");
}

/// Three workers, disjoint words (sites 0, 8, 16 live in words 0, 1, 2):
/// the no-contention baseline — 90 schedules, all equal to the union.
#[test]
fn disjoint_words_converge_under_every_schedule() {
    let scripts: Vec<Script> =
        vec![vec![vec![0, 1], vec![2]], vec![vec![8], vec![9, 10]], vec![vec![16, 17]]];
    check_all_schedules_converge(&scripts);
}

/// Two workers racing on the SAME word with overlapping bits — the
/// commutativity/idempotence case that replaced the mutex. 924 schedules
/// (12 steps over two 6-step workers... bounded deliberately).
#[test]
fn contended_word_converges_under_every_schedule() {
    // Sites 0..8 share word 0; both workers re-hit site 3 (idempotence) and
    // interleave first-hits of the remaining bits (commutativity).
    let scripts: Vec<Script> =
        vec![vec![vec![0, 3], vec![1], vec![3, 4]], vec![vec![3, 5], vec![2], vec![3, 6]]];
    check_all_schedules_converge(&scripts);
}

/// Three workers mixing contended and private words, including novelty-free
/// epochs (re-merging an already-seen run publishes zero atomics) — the
/// epoch-batching fast path must not lose updates under any schedule.
#[test]
fn mixed_contention_with_free_epochs_converges() {
    let scripts: Vec<Script> = vec![
        vec![vec![0, 1], vec![0, 1], vec![64]],
        vec![vec![1, 2], vec![1, 2]],
        vec![vec![0, 2], vec![128]],
    ];
    check_all_schedules_converge(&scripts);
}

/// A resumed worker re-seeds the sink through `from_sparse` (every restored
/// word is dirty) while a live worker publishes concurrently — the resume
/// path must commute with ongoing syncs too.
#[test]
fn resume_reseed_commutes_with_live_publishes() {
    let mut donor = GlobalCoverage::new();
    donor.merge(&run_with(&[0, 1, 40]));
    let dump = donor.to_sparse();

    // Model: worker 0's "steps" are the single-word publishes of its
    // restored shard; worker 1 is a live worker racing it on word 0.
    let scripts: Vec<Script> = vec![vec![vec![0, 1], vec![40]], vec![vec![2], vec![3, 40]]];
    let expect = serial_union(&scripts);
    let mut schedules = 0usize;
    for_each_schedule(&scripts, &mut |schedule| {
        schedules += 1;
        // Worker 0 executes against a shard rebuilt from the checkpoint
        // dump; `from_sparse` marks everything dirty so its publishes are
        // the production resume re-seed.
        let sink = CoverageSink::new();
        let mut shards =
            [GlobalCoverage::from_sparse(&[(0, dump[0].1), (1, dump[1].1)]), GlobalCoverage::new()];
        // Keep worker 0's restored words aligned with its script steps.
        let mut steps = [0usize; 2];
        for &w in schedule {
            let sites = &scripts[w][steps[w]];
            steps[w] += 1;
            shards[w].merge(&run_with(sites));
            sink.publish_dirty(&mut shards[w]);
        }
        assert_eq!(sink.into_global().to_sparse(), expect, "schedule {schedule:?} diverged");
    });
    assert!(schedules > 1);
}
