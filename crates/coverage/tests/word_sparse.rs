//! Property tests pinning the equivalence of the two coverage
//! classification paths: the sparse per-edge walk and the AFL++-style
//! sequential word scan must compute identical results — same novelty
//! verdict, same virgin map, same edge count — for every possible run, and
//! the epoch-batched dirty-word publication through [`CoverageSink`] must
//! collapse to exactly the serial merge.

use lego_coverage::{CovMap, CovRecorder, CoverageSink, GlobalCoverage, SiteId};
use proptest::prelude::*;

/// Build a run map from a raw site-id sequence (edges are formed from
/// consecutive pairs, exactly like instrumented execution).
fn run_of(sites: &[u64]) -> CovMap {
    let mut r = CovRecorder::new();
    for &s in sites {
        r.hit(SiteId::from_raw(s));
    }
    r.into_map()
}

/// Full observable state of an accumulator.
fn state(g: &GlobalCoverage) -> (Vec<(usize, u8)>, usize) {
    (g.to_sparse(), g.edges_covered())
}

/// Site sequences long enough to push runs past `WORD_SCAN_MIN_EDGES` some
/// of the time, with a narrowed id range so repeats create high hit counts
/// (exercising every bucket class).
fn sites() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..5_000, 0..2_500)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn word_scan_and_sparse_merge_agree(runs in prop::collection::vec(sites(), 1..6)) {
        let mut by_words = GlobalCoverage::new();
        let mut by_edges = GlobalCoverage::new();
        for s in &runs {
            let m = run_of(s);
            let a = by_words.merge_words(&m);
            let b = by_edges.merge_sparse(&m);
            prop_assert_eq!(a, b, "novelty verdicts diverged");
            prop_assert_eq!(state(&by_words), state(&by_edges));
        }
    }

    #[test]
    fn dispatching_merge_matches_both_paths(runs in prop::collection::vec(sites(), 1..6)) {
        let mut auto = GlobalCoverage::new();
        let mut sparse = GlobalCoverage::new();
        for s in &runs {
            let m = run_of(s);
            prop_assert_eq!(auto.merge(&m), sparse.merge_sparse(&m));
        }
        prop_assert_eq!(state(&auto), state(&sparse));
    }

    #[test]
    fn union_with_equals_union_sparse(a in sites(), b in sites()) {
        let mut left = GlobalCoverage::new();
        left.merge(&run_of(&a));
        let mut other = GlobalCoverage::new();
        other.merge(&run_of(&b));

        let mut by_words = left.clone();
        by_words.union_with(&other);
        let mut by_dump = left;
        by_dump.union_sparse(&other.to_sparse());
        prop_assert_eq!(state(&by_words), state(&by_dump));
    }

    #[test]
    fn union_order_is_irrelevant(a in sites(), b in sites()) {
        let mut ga = GlobalCoverage::new();
        ga.merge(&run_of(&a));
        let mut gb = GlobalCoverage::new();
        gb.merge(&run_of(&b));
        let mut ab = ga.clone();
        ab.union_with(&gb);
        let mut ba = gb;
        ba.union_with(&ga);
        prop_assert_eq!(state(&ab), state(&ba));
    }

    #[test]
    fn sparse_roundtrip_preserves_state(runs in prop::collection::vec(sites(), 1..4)) {
        let mut g = GlobalCoverage::new();
        for s in &runs {
            g.merge(&run_of(s));
        }
        let back = GlobalCoverage::from_sparse(&g.to_sparse());
        prop_assert_eq!(state(&back), state(&g));
    }

    #[test]
    fn sink_collapse_equals_serial_merge(
        runs in prop::collection::vec(sites(), 1..8),
        shards in prop::collection::vec(0usize..3, 1..8),
    ) {
        // Serial reference: every run merged into one accumulator.
        let mut serial = GlobalCoverage::new();
        for s in &runs {
            serial.merge(&run_of(s));
        }

        // Parallel model: runs dealt across 3 worker shards (per the `shards`
        // assignment), each publishing its dirty delta after every merge —
        // an epoch of one case.
        let sink = CoverageSink::new();
        let mut workers = [GlobalCoverage::new(), GlobalCoverage::new(), GlobalCoverage::new()];
        for (i, s) in runs.iter().enumerate() {
            let w = &mut workers[shards[i % shards.len()]];
            let novel = w.merge(&run_of(s));
            let published = sink.publish_dirty(w);
            // The lock-free fast path: publishing after a no-novelty merge
            // touches zero atomic words.
            if !novel {
                prop_assert_eq!(published, 0);
            }
        }
        let joined = sink.into_global();
        prop_assert_eq!(state(&joined), state(&serial));
    }

    #[test]
    fn drained_words_stay_clean_until_new_coverage(s in sites()) {
        let mut g = GlobalCoverage::new();
        g.merge(&run_of(&s));
        let sink = CoverageSink::new();
        let first = sink.publish_dirty(&mut g);
        prop_assert_eq!(first == 0, s.is_empty());
        // Nothing merged since the drain: nothing left to publish.
        prop_assert_eq!(sink.publish_dirty(&mut g), 0);
        // Re-merging the identical run sets no new bits either.
        g.merge(&run_of(&s));
        prop_assert_eq!(sink.publish_dirty(&mut g), 0);
    }
}
