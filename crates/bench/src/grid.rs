//! Grid-level campaign parallelism for the experiment binaries.
//!
//! The table/figure binaries run a grid of independent fuzzer×dialect×seed
//! campaign cells. [`run_grid`] fans those cells across a scoped thread
//! pool: each cell is a self-contained closure, workers pull the next
//! un-started cell from a shared counter, and results come back in cell
//! order — so the printed tables and JSON reports are byte-identical to a
//! serial run regardless of scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run every job on a pool of `workers` threads, returning results in job
/// order. `workers <= 1` runs the jobs inline, in order, on this thread.
///
/// A panicking cell does not tear down the pool: the panic is caught at the
/// job boundary, the worker moves on to the next cell, and every remaining
/// cell still runs to completion. The first captured panic is re-raised
/// afterwards (with its cell index), so a grid failure is still loud — it
/// just can't silently discard the other cells' side effects (telemetry,
/// written reports) or poison the job slots.
pub fn run_grid<T, F>(jobs: Vec<F>, workers: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let workers = workers.max(1).min(jobs.len().max(1));
    if workers <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }

    let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<T>>> = slots.iter().map(|_| Mutex::new(None)).collect();
    let panics: Mutex<Vec<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(Vec::new());
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= slots.len() {
                    break;
                }
                let job = slots[i]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("job claimed twice");
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)) {
                    Ok(out) => {
                        *results[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
                    }
                    Err(payload) => {
                        panics.lock().unwrap_or_else(|e| e.into_inner()).push((i, payload));
                    }
                }
            });
        }
    });
    let mut panics = panics.into_inner().unwrap_or_else(|e| e.into_inner());
    if let Some((i, payload)) = panics.drain(..).next() {
        eprintln!("grid cell {i} panicked; re-raising after the remaining cells completed");
        std::panic::resume_unwind(payload);
    }
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()).expect("job did not finish"))
        .collect()
}

/// Command line shared by the experiment binaries: positional arguments plus
/// optional flags (any position):
///
/// - `--workers N` / `--workers=N` — grid thread count; falls back to
///   `LEGO_WORKERS`, then to the machine's parallelism.
/// - `--telemetry PATH` / `--telemetry=PATH` — JSONL event log destination;
///   falls back to the `LEGO_TELEMETRY` env var. Metrics exports land next
///   to the log (see [`crate::build_telemetry`]).
/// - `--heartbeat` — ~1 Hz live status line on stderr.
/// - `--oracles[=LIST]` — enable the correctness oracles. Bare `--oracles`
///   turns on the three logic oracles; `--oracles=tlp,norec,differential,recovery`
///   selects a subset (the recovery durability oracle is opt-in only).
/// - `--wal-dir PATH` / `--wal-dir=PATH` — directory for the per-worker
///   write-ahead-log files used by the recovery oracle; falls back to
///   `LEGO_WAL_DIR`, then to a per-process temp directory.
/// - `--serve ADDR` / `--serve=ADDR` — live monitoring HTTP server
///   (`/metrics`, `/status`, `/events`, `/healthz`); falls back to
///   `LEGO_SERVE`. Port `0` picks a free port (printed at startup).
///   Serving implies the time-series recorder.
/// - `--trace PATH` / `--trace=PATH` — Chrome-trace (Perfetto) stage-span
///   export written at exit; falls back to `LEGO_TRACE`.
/// - `--plot-data PATH` — AFL-style `plot_data.csv` destination (default
///   `results/<bin>/plot_data.csv` when serving).
/// - `--plot-every MS` — time-series sample cadence (default 1000 ms).
/// - `--rule-cov` — grammar-rule coverage feedback (second virgin map over
///   parser rule→rule edges; rule novelty widens corpus admission).
/// - `--sema` — static sequence analyzer (pre-execution validity skip,
///   dependency-aware mutation, analyzer-vs-engine conformance oracle).
pub struct Cli {
    /// Positional arguments, flags removed, program name excluded.
    pub positional: Vec<String>,
    pub workers: usize,
    /// JSONL event-log path, when telemetry was requested.
    pub telemetry: Option<String>,
    pub heartbeat: bool,
    /// Correctness-oracle selection (disabled unless `--oracles` is given).
    pub oracles: lego::OracleConfig,
    /// WAL directory for the recovery oracle (`--wal-dir`/`LEGO_WAL_DIR`).
    pub wal_dir: Option<String>,
    /// Monitoring-server listen address, when `--serve`/`LEGO_SERVE` given.
    pub serve: Option<String>,
    /// Chrome-trace output path, when `--trace`/`LEGO_TRACE` given.
    pub trace: Option<String>,
    /// Explicit plot-data CSV path (`--plot-data`).
    pub plot_data: Option<String>,
    /// Time-series sample cadence in milliseconds (`--plot-every`).
    pub plot_every_ms: u64,
    /// Grammar-rule coverage feedback (`--rule-cov`).
    pub rule_cov: bool,
    /// Static sequence analyzer (`--sema`).
    pub sema: bool,
}

/// Parse an `--oracles` value: a comma-separated subset of
/// `tlp`/`norec`/`differential`/`recovery` (`diff` accepted). `all` means
/// the three logic oracles — the recovery durability oracle is only enabled
/// when named explicitly. Unknown names are ignored rather than fatal —
/// experiment binaries treat flags leniently.
pub fn parse_oracles(spec: &str) -> lego::OracleConfig {
    let mut cfg = lego::OracleConfig::disabled();
    for name in spec.split(',') {
        match name.trim().to_ascii_lowercase().as_str() {
            "tlp" => cfg.tlp = true,
            "norec" => cfg.norec = true,
            "differential" | "diff" => cfg.differential = true,
            "recovery" => cfg.recovery = true,
            "all" => {
                let recovery = cfg.recovery;
                cfg = lego::OracleConfig::all();
                cfg.recovery = recovery;
            }
            _ => {}
        }
    }
    cfg
}

impl Cli {
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    fn from_args(args: impl Iterator<Item = String>) -> Self {
        let mut positional = Vec::new();
        let mut workers = None;
        let mut telemetry = None;
        let mut heartbeat = false;
        let mut oracles = lego::OracleConfig::disabled();
        let mut wal_dir = None;
        let mut serve = None;
        let mut trace = None;
        let mut plot_data = None;
        let mut plot_every_ms = None;
        let mut rule_cov = false;
        let mut sema = false;
        let mut args = args.peekable();
        while let Some(a) = args.next() {
            if a == "--workers" {
                workers = args.next().and_then(|v| v.parse().ok());
            } else if let Some(v) = a.strip_prefix("--workers=") {
                workers = v.parse().ok();
            } else if a == "--telemetry" {
                telemetry = args.next();
            } else if let Some(v) = a.strip_prefix("--telemetry=") {
                telemetry = Some(v.to_string());
            } else if a == "--heartbeat" {
                heartbeat = true;
            } else if a == "--oracles" {
                oracles = lego::OracleConfig::all();
            } else if let Some(v) = a.strip_prefix("--oracles=") {
                oracles = parse_oracles(v);
            } else if a == "--wal-dir" {
                wal_dir = args.next();
            } else if let Some(v) = a.strip_prefix("--wal-dir=") {
                wal_dir = Some(v.to_string());
            } else if a == "--serve" {
                serve = args.next();
            } else if let Some(v) = a.strip_prefix("--serve=") {
                serve = Some(v.to_string());
            } else if a == "--trace" {
                trace = args.next();
            } else if let Some(v) = a.strip_prefix("--trace=") {
                trace = Some(v.to_string());
            } else if a == "--plot-data" {
                plot_data = args.next();
            } else if let Some(v) = a.strip_prefix("--plot-data=") {
                plot_data = Some(v.to_string());
            } else if a == "--plot-every" {
                plot_every_ms = args.next().and_then(|v| v.parse().ok());
            } else if let Some(v) = a.strip_prefix("--plot-every=") {
                plot_every_ms = v.parse().ok();
            } else if a == "--rule-cov" {
                rule_cov = true;
            } else if a == "--sema" {
                sema = true;
            } else {
                positional.push(a);
            }
        }
        Self {
            positional,
            workers: workers.filter(|&w| w >= 1).unwrap_or_else(lego::campaign::default_workers),
            telemetry: telemetry
                .or_else(|| std::env::var("LEGO_TELEMETRY").ok())
                .filter(|p| !p.is_empty()),
            heartbeat,
            oracles,
            wal_dir: wal_dir
                .or_else(|| std::env::var("LEGO_WAL_DIR").ok())
                .filter(|p| !p.is_empty()),
            serve: serve.or_else(|| std::env::var("LEGO_SERVE").ok()).filter(|a| !a.is_empty()),
            trace: trace.or_else(|| std::env::var("LEGO_TRACE").ok()).filter(|p| !p.is_empty()),
            plot_data: plot_data.filter(|p| !p.is_empty()),
            plot_every_ms: plot_every_ms.unwrap_or(1000).max(10),
            rule_cov,
            sema,
        }
    }

    /// Positional argument `i` parsed, or the default.
    pub fn arg<T: std::str::FromStr>(&self, i: usize, default: T) -> T {
        self.positional.get(i).and_then(|s| s.parse().ok()).unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_preserves_job_order() {
        let jobs: Vec<_> = (0..64).map(|i| move || i * 2).collect();
        assert_eq!(run_grid(jobs, 8), (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn grid_runs_serially_with_one_worker() {
        let jobs: Vec<_> = (0..5).map(|i| move || i).collect();
        assert_eq!(run_grid(jobs, 1), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn grid_panic_finishes_remaining_cells_before_reraising() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DONE: AtomicUsize = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..12usize)
            .map(|i| {
                Box::new(move || {
                    if i == 3 {
                        panic!("injected grid cell failure");
                    }
                    DONE.fetch_add(1, Ordering::Relaxed);
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_grid(jobs, 4)));
        let payload = caught.expect_err("grid panic must still surface");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("injected grid cell failure"), "unexpected payload: {msg}");
        assert_eq!(DONE.load(Ordering::Relaxed), 11, "surviving cells must all run");
    }

    #[test]
    fn grid_handles_empty_and_fewer_jobs_than_workers() {
        assert_eq!(run_grid(Vec::<fn() -> u8>::new(), 4), Vec::<u8>::new());
        let jobs: Vec<_> = (0..2).map(|i| move || i).collect();
        assert_eq!(run_grid(jobs, 16), vec![0, 1]);
    }

    #[test]
    fn cli_extracts_workers_flag_anywhere() {
        let cli = Cli::from_args(["20000", "--workers", "3", "2"].into_iter().map(String::from));
        assert_eq!(cli.workers, 3);
        assert_eq!(cli.positional, vec!["20000", "2"]);
        assert_eq!(cli.arg::<usize>(0, 7), 20000);
        assert_eq!(cli.arg::<usize>(5, 7), 7);

        let eq = Cli::from_args(["--workers=5"].into_iter().map(String::from));
        assert_eq!(eq.workers, 5);
        assert!(eq.positional.is_empty());
    }

    #[test]
    fn cli_extracts_telemetry_and_heartbeat_flags() {
        let cli = Cli::from_args(
            ["9000", "--telemetry", "/tmp/ev.jsonl", "--heartbeat", "4"]
                .into_iter()
                .map(String::from),
        );
        assert_eq!(cli.telemetry.as_deref(), Some("/tmp/ev.jsonl"));
        assert!(cli.heartbeat);
        assert_eq!(cli.positional, vec!["9000", "4"]);

        let eq = Cli::from_args(["--telemetry=x.jsonl"].into_iter().map(String::from));
        assert_eq!(eq.telemetry.as_deref(), Some("x.jsonl"));
        assert!(!eq.heartbeat);
    }

    #[test]
    fn cli_extracts_monitoring_flags() {
        let cli = Cli::from_args(
            ["9000", "--serve", "127.0.0.1:0", "--trace", "/tmp/t.json", "--plot-every", "250"]
                .into_iter()
                .map(String::from),
        );
        assert_eq!(cli.serve.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(cli.trace.as_deref(), Some("/tmp/t.json"));
        assert_eq!(cli.plot_every_ms, 250);
        assert_eq!(cli.positional, vec!["9000"]);

        let eq = Cli::from_args(
            ["--serve=0.0.0.0:9100", "--trace=t.json", "--plot-data=p.csv"]
                .into_iter()
                .map(String::from),
        );
        assert_eq!(eq.serve.as_deref(), Some("0.0.0.0:9100"));
        assert_eq!(eq.trace.as_deref(), Some("t.json"));
        assert_eq!(eq.plot_data.as_deref(), Some("p.csv"));
        assert_eq!(eq.plot_every_ms, 1000, "default cadence");

        let off = Cli::from_args(["9000"].into_iter().map(String::from));
        assert!(off.serve.is_none() && off.trace.is_none() && off.plot_data.is_none());
    }

    #[test]
    fn cli_clamps_plot_cadence() {
        let cli = Cli::from_args(["--plot-every=1"].into_iter().map(String::from));
        assert!(cli.plot_every_ms >= 10, "sub-10ms cadence must be clamped");
    }

    #[test]
    fn cli_extracts_rule_cov_flag() {
        let on = Cli::from_args(["9000", "--rule-cov", "2"].into_iter().map(String::from));
        assert!(on.rule_cov);
        assert_eq!(on.positional, vec!["9000", "2"]);
        let off = Cli::from_args(["9000"].into_iter().map(String::from));
        assert!(!off.rule_cov);
    }

    #[test]
    fn cli_extracts_sema_flag() {
        let on = Cli::from_args(["9000", "--sema"].into_iter().map(String::from));
        assert!(on.sema);
        assert_eq!(on.positional, vec!["9000"]);
        let off = Cli::from_args(["9000"].into_iter().map(String::from));
        assert!(!off.sema);
    }

    #[test]
    fn cli_rejects_zero_workers() {
        let cli = Cli::from_args(["--workers", "0"].into_iter().map(String::from));
        assert!(cli.workers >= 1);
    }

    #[test]
    fn cli_extracts_oracles_flag() {
        let off = Cli::from_args(["9000"].into_iter().map(String::from));
        assert!(!off.oracles.enabled());

        let all = Cli::from_args(["--oracles", "9000"].into_iter().map(String::from));
        assert_eq!(all.oracles, lego::OracleConfig::all());
        assert_eq!(all.positional, vec!["9000"]);

        let subset = Cli::from_args(["--oracles=tlp,norec"].into_iter().map(String::from));
        assert!(subset.oracles.tlp && subset.oracles.norec && !subset.oracles.differential);
    }

    #[test]
    fn oracle_spec_parsing() {
        assert_eq!(parse_oracles("all"), lego::OracleConfig::all());
        let d = parse_oracles("diff");
        assert!(d.differential && !d.tlp && !d.norec);
        assert!(!parse_oracles("bogus").enabled());
        let spaced = parse_oracles(" tlp , differential ");
        assert!(spaced.tlp && spaced.differential && !spaced.norec);
    }
}
