#![forbid(unsafe_code)]

//! Shared experiment plumbing for the table/figure reproduction binaries.
//!
//! Every binary prints a human-readable table mirroring the paper's artifact
//! and writes a machine-readable JSON report under `results/`.

pub mod grid;

use lego::campaign::{
    run_campaign_durable, run_campaign_observed, run_campaign_parallel_durable,
    run_campaign_parallel_observed, run_campaign_parallel_with_oracles, run_campaign_with_oracles,
    Budget, CampaignStats, ParallelOpts,
};
use lego::checkpoint::CheckpointCfg;
use lego::observe::http::MonitorConfig;
use lego::observe::{
    BroadcastSink, MetricsRegistry, MonitorServer, Telemetry, TimeSeriesRecorder, TraceCollector,
};
use lego::OracleConfig;
use lego_baselines::engine_by_name;
use lego_sqlast::Dialect;
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The standard "24-hour" campaign budget, in statement-execution units.
/// Chosen so a full fuzzer×DBMS grid runs in minutes on a laptop while the
/// coverage curves are already well past their knees.
pub const DAY_BUDGET_UNITS: usize = 400_000;

/// The "continuous fuzzing" budget for the Table I bug hunt (per RNG seed).
pub const CONTINUOUS_BUDGET_UNITS: usize = 1_500_000;

/// Default RNG seed for single-run experiments.
pub const DEFAULT_SEED: u64 = 0x1e60;

/// Fuzzers evaluated on a dialect (paper § V-A: SQLsmith officially supports
/// only PostgreSQL syntax, so it is compared there alone).
pub fn fuzzer_names(dialect: Dialect) -> Vec<&'static str> {
    match dialect {
        Dialect::Postgres => vec!["LEGO", "SQUIRREL", "SQLancer", "SQLsmith"],
        _ => vec!["LEGO", "SQUIRREL", "SQLancer"],
    }
}

/// Run one fuzzer×dialect campaign with the standard seed.
pub fn campaign(fuzzer: &str, dialect: Dialect, units: usize, seed: u64) -> CampaignStats {
    campaign_observed(fuzzer, dialect, units, seed, &Telemetry::disabled())
}

/// [`campaign`] reporting through a telemetry handle (shareable across grid
/// cells: sinks are line-atomic and metrics aggregate across cells).
pub fn campaign_observed(
    fuzzer: &str,
    dialect: Dialect,
    units: usize,
    seed: u64,
    tel: &Telemetry,
) -> CampaignStats {
    let mut engine = engine_by_name(fuzzer, dialect, seed);
    run_campaign_observed(engine.as_mut(), dialect, Budget::units(units), tel)
}

/// [`campaign_observed`] with the correctness oracles enabled per `oracles`
/// (checked after every corpus-accepted case; see `lego::campaign`).
pub fn campaign_with_oracles(
    fuzzer: &str,
    dialect: Dialect,
    units: usize,
    seed: u64,
    tel: &Telemetry,
    oracles: OracleConfig,
) -> CampaignStats {
    let mut engine = engine_by_name(fuzzer, dialect, seed);
    run_campaign_with_oracles(engine.as_mut(), dialect, Budget::units(units), tel, oracles)
}

/// [`campaign_with_oracles`] plus an explicit WAL directory for the
/// recovery durability oracle (`oracles.recovery`); `None` journals under a
/// per-process temp directory. The WAL location never influences findings.
pub fn campaign_durable(
    fuzzer: &str,
    dialect: Dialect,
    units: usize,
    seed: u64,
    tel: &Telemetry,
    oracles: OracleConfig,
    wal_dir: Option<&Path>,
) -> CampaignStats {
    let mut engine = engine_by_name(fuzzer, dialect, seed);
    run_campaign_durable(
        engine.as_mut(),
        dialect,
        Budget::units(units),
        tel,
        oracles,
        &CheckpointCfg::disabled(),
        wal_dir,
    )
    .expect("durable campaign without checkpointing cannot fail")
}

/// Run one fuzzer×dialect campaign sharded over `workers` threads. Worker
/// `w` gets seed `seed ^ w·φ`, so worker 0 reproduces the serial stream and
/// `workers == 1` is byte-identical to [`campaign`].
pub fn campaign_parallel(
    fuzzer: &str,
    dialect: Dialect,
    units: usize,
    seed: u64,
    workers: usize,
) -> CampaignStats {
    campaign_parallel_observed(fuzzer, dialect, units, seed, workers, &Telemetry::disabled())
}

/// [`campaign_parallel`] reporting through a telemetry handle.
pub fn campaign_parallel_observed(
    fuzzer: &str,
    dialect: Dialect,
    units: usize,
    seed: u64,
    workers: usize,
    tel: &Telemetry,
) -> CampaignStats {
    let fuzzer = fuzzer.to_string();
    run_campaign_parallel_observed(
        move |w| {
            engine_by_name(&fuzzer, dialect, seed ^ (w as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
        },
        dialect,
        Budget::units(units),
        ParallelOpts { workers, ..ParallelOpts::default() },
        tel,
    )
}

/// [`campaign_parallel_observed`] with the correctness oracles enabled.
pub fn campaign_parallel_with_oracles(
    fuzzer: &str,
    dialect: Dialect,
    units: usize,
    seed: u64,
    workers: usize,
    tel: &Telemetry,
    oracles: OracleConfig,
) -> CampaignStats {
    let fuzzer = fuzzer.to_string();
    run_campaign_parallel_with_oracles(
        move |w| {
            engine_by_name(&fuzzer, dialect, seed ^ (w as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
        },
        dialect,
        Budget::units(units),
        ParallelOpts { workers, ..ParallelOpts::default() },
        tel,
        oracles,
    )
}

/// [`campaign_parallel_with_oracles`] plus an explicit WAL directory for the
/// recovery oracle. Each worker journals to its own `worker{NN}.wal` file
/// under `wal_dir` and derives crash points from case content only, so the
/// N-worker run stays byte-identical to the serial one.
#[allow(clippy::too_many_arguments)]
pub fn campaign_parallel_durable(
    fuzzer: &str,
    dialect: Dialect,
    units: usize,
    seed: u64,
    workers: usize,
    tel: &Telemetry,
    oracles: OracleConfig,
    wal_dir: Option<&Path>,
) -> CampaignStats {
    let fuzzer = fuzzer.to_string();
    run_campaign_parallel_durable(
        move |w| {
            engine_by_name(&fuzzer, dialect, seed ^ (w as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
        },
        dialect,
        Budget::units(units),
        ParallelOpts { workers, ..ParallelOpts::default() },
        tel,
        oracles,
        &CheckpointCfg::disabled(),
        wal_dir,
    )
    .expect("durable campaign without checkpointing cannot fail")
}

/// A configured telemetry handle plus the monitoring-plane resources that
/// must be torn down (exports written, server stopped) when
/// [`TelemetryGuard::finish`] is called at process exit.
pub struct TelemetryGuard {
    pub tel: Telemetry,
    metrics: Option<Arc<MetricsRegistry>>,
    /// `<event log path minus extension>` — exports land at
    /// `<base>.metrics.json` and `<base>.prom`.
    export_base: Option<PathBuf>,
    server: Option<MonitorServer>,
    recorder: Option<TimeSeriesRecorder>,
    trace: Option<(Arc<TraceCollector>, PathBuf)>,
}

impl TelemetryGuard {
    fn disabled() -> Self {
        Self {
            tel: Telemetry::disabled(),
            metrics: None,
            export_base: None,
            server: None,
            recorder: None,
            trace: None,
        }
    }

    /// The address the monitoring server actually bound (port 0 resolved),
    /// when `--serve` was given.
    pub fn serve_addr(&self) -> Option<std::net::SocketAddr> {
        self.server.as_ref().map(|s| s.local_addr())
    }

    /// Flush sinks, print the final heartbeat, close out the time series
    /// and trace exports, write the metrics exports next to the event log,
    /// and stop the monitoring server.
    pub fn finish(&mut self) {
        self.tel.finish();
        if let Some(recorder) = &mut self.recorder {
            recorder.finish();
        }
        if let Some((collector, path)) = self.trace.take() {
            match collector.write_chrome_trace(&path) {
                Ok(spans) => {
                    println!("[trace: {spans} spans written to {}]", path.display());
                    if collector.dropped() > 0 {
                        println!("[trace: {} spans dropped at cap]", collector.dropped());
                    }
                }
                Err(e) => eprintln!("[trace: cannot write {}: {e}]", path.display()),
            }
        }
        if let (Some(m), Some(base)) = (&self.metrics, &self.export_base) {
            let json = base.with_extension("metrics.json");
            let prom = base.with_extension("prom");
            if std::fs::write(&json, m.json()).is_ok() {
                println!("[telemetry metrics written to {}]", json.display());
            }
            let _ = std::fs::write(&prom, m.prometheus_text());
        }
        if let Some(mut server) = self.server.take() {
            // CI smoke tests race short campaigns against curl; an optional
            // linger keeps the endpoints up after the run completes.
            if let Some(ms) =
                std::env::var("LEGO_SERVE_LINGER_MS").ok().and_then(|v| v.parse::<u64>().ok())
            {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
            server.shutdown();
        }
    }
}

/// Everything the monitoring plane needs to know, decoupled from the CLI so
/// binaries with bespoke flag handling can fill it directly.
pub struct MonitorOpts {
    pub event_log: Option<PathBuf>,
    pub heartbeat: bool,
    pub workers: usize,
    pub seed: u64,
    /// Listen address for the live HTTP server (`--serve`).
    pub serve: Option<String>,
    /// Chrome-trace output path (`--trace`).
    pub trace: Option<PathBuf>,
    /// Explicit plot-data CSV path; `--serve` defaults it to
    /// `results/<run>/plot_data.csv`.
    pub plot_data: Option<PathBuf>,
    pub plot_every_ms: u64,
    /// Run label shown in `/status` and used for the default plot path.
    pub run_name: String,
}

impl MonitorOpts {
    /// Monitoring disabled: event log + heartbeat only (the pre-monitoring
    /// telemetry surface).
    pub fn quiet(event_log: Option<&Path>, heartbeat: bool, workers: usize, seed: u64) -> Self {
        Self {
            event_log: event_log.map(Path::to_path_buf),
            heartbeat,
            workers,
            seed,
            serve: None,
            trace: None,
            plot_data: None,
            plot_every_ms: 1000,
            run_name: run_name_from_arg0(),
        }
    }

    /// Fill from the shared experiment CLI flags.
    pub fn from_cli(cli: &grid::Cli, seed: u64) -> Self {
        Self {
            event_log: cli.telemetry.as_deref().map(PathBuf::from),
            heartbeat: cli.heartbeat,
            workers: cli.workers,
            seed,
            serve: cli.serve.clone(),
            trace: cli.trace.as_deref().map(PathBuf::from),
            plot_data: cli.plot_data.as_deref().map(PathBuf::from),
            plot_every_ms: cli.plot_every_ms,
            run_name: run_name_from_arg0(),
        }
    }

    fn any_enabled(&self) -> bool {
        self.event_log.is_some()
            || self.heartbeat
            || self.serve.is_some()
            || self.trace.is_some()
            || self.plot_data.is_some()
    }
}

/// The invoking binary's file stem — the default run label.
fn run_name_from_arg0() -> String {
    std::env::args()
        .next()
        .as_deref()
        .map(Path::new)
        .and_then(Path::file_stem)
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "lego".into())
}

/// Build the experiment-binary telemetry handle from the shared CLI flags:
/// disabled unless `--telemetry`/`LEGO_TELEMETRY`, `--heartbeat`, or one of
/// the monitoring flags (`--serve`/`LEGO_SERVE`, `--trace`/`LEGO_TRACE`,
/// `--plot-data`) was given. With an event-log path, events stream to
/// `<path>` as JSONL, a metrics registry aggregates them (exported by
/// [`TelemetryGuard::finish`]), and deduplicated bug artifacts are dumped
/// under `results/bugs/<dialect>/`.
pub fn build_telemetry(cli: &grid::Cli, seed: u64) -> TelemetryGuard {
    build_monitored(MonitorOpts::from_cli(cli, seed))
}

/// [`build_telemetry`] without the CLI: explicit event-log path and
/// heartbeat switch, monitoring plane off.
pub fn telemetry_to(
    event_log: Option<&Path>,
    heartbeat: bool,
    workers: usize,
    seed: u64,
) -> TelemetryGuard {
    build_monitored(MonitorOpts::quiet(event_log, heartbeat, workers, seed))
}

/// Assemble the full telemetry + monitoring plane described by `opts`.
///
/// The monitoring plane is strictly read-side: the campaign's event stream,
/// findings, and checkpoints are byte-identical whether or not a server,
/// recorder, or trace collector is attached (`crates/core/tests/monitor.rs`
/// pins this).
pub fn build_monitored(opts: MonitorOpts) -> TelemetryGuard {
    if !opts.any_enabled() {
        return TelemetryGuard::disabled();
    }
    let mut builder = Telemetry::builder().seed(opts.seed);
    let mut metrics = None;
    let mut export_base = None;
    if let Some(path) = &opts.event_log {
        builder = match builder.jsonl(path) {
            Ok(b) => b,
            Err(e) => panic!("cannot open telemetry log {}: {e}", path.display()),
        };
        export_base = Some(path.with_extension(""));
        builder = builder.bug_artifacts(results_dir().join("bugs"));
    }
    // /metrics needs a registry even without an event log (it is fed by the
    // same per-event observer plus direct wall-clock observations).
    if opts.event_log.is_some() || opts.serve.is_some() {
        let registry = Arc::new(MetricsRegistry::new());
        builder = builder.metrics(registry.clone());
        metrics = Some(registry);
    }
    if opts.heartbeat {
        builder = builder.heartbeat(opts.workers);
    }
    let broadcast = opts.serve.as_ref().map(|_| Arc::new(BroadcastSink::new()));
    if let Some(b) = &broadcast {
        builder = builder.live_sink(b.clone());
    }
    let trace = opts.trace.as_ref().map(|path| {
        let collector = Arc::new(TraceCollector::new());
        (collector, path.clone())
    });
    if let Some((collector, _)) = &trace {
        builder = builder.trace(collector.clone());
    }
    let tel = builder.build();

    let server = opts.serve.as_ref().and_then(|addr| {
        let config = MonitorConfig {
            run_name: opts.run_name.clone(),
            workers: opts.workers,
            seed: opts.seed,
            extra: Vec::new(),
        };
        match MonitorServer::bind(addr, tel.clone(), broadcast.clone(), config) {
            Ok(server) => {
                println!("[monitor listening on http://{}]", server.local_addr());
                Some(server)
            }
            Err(e) => {
                eprintln!("[monitor: cannot bind {addr}: {e} — continuing unserved]");
                None
            }
        }
    });

    // `--serve` implies the time-series recorder: live dashboards and
    // post-hoc plots come from the same sampler.
    let plot_path = opts.plot_data.clone().or_else(|| {
        opts.serve.as_ref().map(|_| results_dir().join(&opts.run_name).join("plot_data.csv"))
    });
    let recorder = plot_path.and_then(|path| {
        let live = tel.live_arc()?;
        match TimeSeriesRecorder::start(&path, opts.plot_every_ms, live) {
            Ok(r) => {
                println!("[plot data recording to {}]", path.display());
                Some(r)
            }
            Err(e) => {
                eprintln!("[plot data: cannot open {}: {e}]", path.display());
                None
            }
        }
    });

    TelemetryGuard { tel, metrics, export_base, server, recorder, trace }
}

/// The repository root (where `BENCH_*.json` artifacts land).
pub fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("repo root")
}

/// Where experiment outputs land.
pub fn results_dir() -> PathBuf {
    let dir = repo_root().join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Persist a JSON report next to the printed table.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize report");
    std::fs::write(&path, json).expect("write report");
    println!("\n[report written to {}]", path.display());
}

/// Percentage by which `a` exceeds `b`.
pub fn pct_more(a: usize, b: usize) -> f64 {
    if b == 0 {
        return 0.0;
    }
    (a as f64 - b as f64) / b as f64 * 100.0
}

/// Render a simple aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i.min(widths.len() - 1)]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sqlsmith_only_on_postgres() {
        assert!(fuzzer_names(Dialect::Postgres).contains(&"SQLsmith"));
        assert!(!fuzzer_names(Dialect::MySql).contains(&"SQLsmith"));
    }

    #[test]
    fn pct_more_basics() {
        assert_eq!(pct_more(150, 100), 50.0);
        assert_eq!(pct_more(100, 0), 0.0);
    }

    #[test]
    fn tiny_campaign_runs_for_every_pair() {
        for d in Dialect::ALL {
            for f in fuzzer_names(d) {
                let stats = campaign(f, d, 3_000, 1);
                assert!(stats.branches > 0, "{f} on {d:?}");
            }
        }
    }
}
