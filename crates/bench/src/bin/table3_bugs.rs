//! Table III: number of (deduplicated) bugs triggered by each fuzzer within
//! one budgeted campaign.
//!
//! Paper: SQLancer 0, SQLsmith 0, SQUIRREL 11 (3 MySQL + 8 MariaDB), LEGO 52
//! (2 / 11 / 32 / 7). Expected shape: LEGO ≫ SQUIRREL > SQLancer = SQLsmith
//! = 0, with SQUIRREL's finds confined to MySQL/MariaDB.
//!
//! Usage: `table3_bugs [UNITS] [--workers N]` — the fuzzer×dialect cells run
//! across a worker pool; results are identical for any worker count.

use lego_bench::grid::{run_grid, Cli};
use lego_bench::*;
use lego_sqlast::Dialect;
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    dialect: String,
    fuzzer: String,
    bugs: usize,
    wall_ms: u64,
    execs_per_sec: f64,
    identifiers: Vec<String>,
}

const FUZZER_ORDER: [&str; 4] = ["SQLancer", "SQLsmith", "SQUIRREL", "LEGO"];

fn main() {
    let cli = Cli::parse();
    let units: usize = cli.arg(0, DAY_BUDGET_UNITS);
    println!(
        "Table III — bugs triggered in one budgeted campaign ({units} units, {} workers)\n",
        cli.workers
    );

    let pairs: Vec<(Dialect, &str)> = Dialect::ALL
        .into_iter()
        .flat_map(|d| {
            FUZZER_ORDER
                .into_iter()
                .filter(move |&f| f != "SQLsmith" || d == Dialect::Postgres)
                .map(move |f| (d, f))
        })
        .collect();
    let mut guard = build_telemetry(&cli, DEFAULT_SEED);
    let tel = &guard.tel;
    let jobs: Vec<_> = pairs
        .iter()
        .map(|&(dialect, fuzzer)| {
            move || campaign_observed(fuzzer, dialect, units, DEFAULT_SEED, tel)
        })
        .collect();
    let stats = run_grid(jobs, cli.workers);
    guard.finish();

    let cells: Vec<Cell> = pairs
        .iter()
        .zip(&stats)
        .map(|(&(dialect, fuzzer), s)| Cell {
            dialect: dialect.name().to_string(),
            fuzzer: fuzzer.to_string(),
            bugs: s.bugs.len(),
            wall_ms: s.wall_ms,
            execs_per_sec: s.execs_per_sec,
            identifiers: s.bugs.iter().map(|b| b.crash.identifier.clone()).collect(),
        })
        .collect();

    let mut rows = Vec::new();
    let mut totals = std::collections::BTreeMap::new();
    for dialect in Dialect::ALL {
        let mut row = vec![dialect.name().to_string()];
        for fuzzer in FUZZER_ORDER {
            if fuzzer == "SQLsmith" && dialect != Dialect::Postgres {
                row.push("-".into());
                continue;
            }
            let cell = cells
                .iter()
                .find(|c| c.dialect == dialect.name() && c.fuzzer == fuzzer)
                .expect("cell ran");
            row.push(cell.bugs.to_string());
            *totals.entry(fuzzer.to_string()).or_insert(0usize) += cell.bugs;
        }
        rows.push(row);
    }
    rows.push(vec![
        "Total".into(),
        totals.get("SQLancer").copied().unwrap_or(0).to_string(),
        totals.get("SQLsmith").copied().unwrap_or(0).to_string(),
        totals.get("SQUIRREL").copied().unwrap_or(0).to_string(),
        totals.get("LEGO").copied().unwrap_or(0).to_string(),
    ]);
    print_table(&["DBMS", "SQLancer", "SQLsmith", "SQUIRREL", "LEGO"], &rows);
    save_json("table3_bugs", &cells);
}
