//! Table III: number of (deduplicated) bugs triggered by each fuzzer within
//! one budgeted campaign.
//!
//! Paper: SQLancer 0, SQLsmith 0, SQUIRREL 11 (3 MySQL + 8 MariaDB), LEGO 52
//! (2 / 11 / 32 / 7). Expected shape: LEGO ≫ SQUIRREL > SQLancer = SQLsmith
//! = 0, with SQUIRREL's finds confined to MySQL/MariaDB.

use lego_bench::*;
use lego_sqlast::Dialect;
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    dialect: String,
    fuzzer: String,
    bugs: usize,
    identifiers: Vec<String>,
}

fn main() {
    let units: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DAY_BUDGET_UNITS);
    println!("Table III — bugs triggered in one budgeted campaign ({units} units)\n");
    let mut cells = Vec::new();
    let mut rows = Vec::new();
    let mut totals = std::collections::BTreeMap::new();
    for dialect in Dialect::ALL {
        let mut row = vec![dialect.name().to_string()];
        for fuzzer in ["SQLancer", "SQLsmith", "SQUIRREL", "LEGO"] {
            if fuzzer == "SQLsmith" && dialect != Dialect::Postgres {
                row.push("-".into());
                continue;
            }
            let stats = campaign(fuzzer, dialect, units, DEFAULT_SEED);
            let ids: Vec<String> =
                stats.bugs.iter().map(|b| b.crash.identifier.clone()).collect();
            row.push(stats.bugs.len().to_string());
            *totals.entry(fuzzer.to_string()).or_insert(0usize) += stats.bugs.len();
            cells.push(Cell {
                dialect: dialect.name().to_string(),
                fuzzer: fuzzer.to_string(),
                bugs: stats.bugs.len(),
                identifiers: ids,
            });
        }
        rows.push(row);
    }
    rows.push(vec![
        "Total".into(),
        totals.get("SQLancer").copied().unwrap_or(0).to_string(),
        totals.get("SQLsmith").copied().unwrap_or(0).to_string(),
        totals.get("SQUIRREL").copied().unwrap_or(0).to_string(),
        totals.get("LEGO").copied().unwrap_or(0).to_string(),
    ]);
    print_table(&["DBMS", "SQLancer", "SQLsmith", "SQUIRREL", "LEGO"], &rows);
    save_json("table3_bugs", &cells);
}
