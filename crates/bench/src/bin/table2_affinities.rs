//! Table II: number of type-affinities contained in the test cases each
//! fuzzer generated within the budget.
//!
//! Paper totals: SQLancer 770, SQUIRREL 119, LEGO 3707 — the expected shape
//! is LEGO ≫ SQLancer > SQUIRREL, with SQLsmith excluded because its
//! generated test cases contain a single statement.

use lego_bench::grid::{run_grid, Cli};
use lego_bench::*;
use lego_sqlast::Dialect;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dialect: String,
    sqlancer: usize,
    squirrel: usize,
    lego: usize,
    wall_ms: u64,
}

fn main() {
    let cli = Cli::parse();
    let units: usize = cli.arg(0, DAY_BUDGET_UNITS);
    println!(
        "Table II — type-affinities in generated seeds ({units} units, {} workers)\n",
        cli.workers
    );

    let specs: Vec<(Dialect, &str)> = Dialect::ALL
        .into_iter()
        .flat_map(|d| ["SQLancer", "SQUIRREL", "LEGO"].into_iter().map(move |f| (d, f)))
        .collect();
    let mut guard = build_telemetry(&cli, DEFAULT_SEED);
    let tel = &guard.tel;
    let jobs: Vec<_> = specs
        .iter()
        .map(|&(dialect, fuzzer)| {
            move || campaign_observed(fuzzer, dialect, units, DEFAULT_SEED, tel)
        })
        .collect();
    let stats = run_grid(jobs, cli.workers);
    guard.finish();

    let mut out = Vec::new();
    let mut rows = Vec::new();
    let (mut t_sqlancer, mut t_squirrel, mut t_lego) = (0usize, 0usize, 0usize);
    for (i, dialect) in Dialect::ALL.into_iter().enumerate() {
        let cell = |j: usize| &stats[i * 3 + j];
        let (sqlancer, squirrel, lego) =
            (cell(0).corpus_affinities, cell(1).corpus_affinities, cell(2).corpus_affinities);
        let wall_ms = (0..3).map(|j| cell(j).wall_ms).sum();
        t_sqlancer += sqlancer;
        t_squirrel += squirrel;
        t_lego += lego;
        rows.push(vec![
            dialect.name().to_string(),
            sqlancer.to_string(),
            squirrel.to_string(),
            lego.to_string(),
        ]);
        out.push(Row { dialect: dialect.name().to_string(), sqlancer, squirrel, lego, wall_ms });
    }
    rows.push(vec![
        "Total".into(),
        t_sqlancer.to_string(),
        t_squirrel.to_string(),
        t_lego.to_string(),
    ]);
    rows.push(vec![
        "Increment (LEGO -)".into(),
        (t_lego.saturating_sub(t_sqlancer)).to_string(),
        (t_lego.saturating_sub(t_squirrel)).to_string(),
        "-".into(),
    ]);
    print_table(&["DBMS", "SQLancer", "SQUIRREL", "LEGO"], &rows);
    println!("\n(SQLsmith excluded: one statement per test case, hence zero affinities.)");
    save_json("table2_affinities", &out);
}
