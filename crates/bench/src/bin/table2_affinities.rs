//! Table II: number of type-affinities contained in the test cases each
//! fuzzer generated within the budget.
//!
//! Paper totals: SQLancer 770, SQUIRREL 119, LEGO 3707 — the expected shape
//! is LEGO ≫ SQLancer > SQUIRREL, with SQLsmith excluded because its
//! generated test cases contain a single statement.

use lego_bench::*;
use lego_sqlast::Dialect;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dialect: String,
    sqlancer: usize,
    squirrel: usize,
    lego: usize,
}

fn main() {
    let units: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DAY_BUDGET_UNITS);
    println!("Table II — type-affinities in generated seeds ({units} units)\n");
    let mut out = Vec::new();
    let mut rows = Vec::new();
    let (mut t_sqlancer, mut t_squirrel, mut t_lego) = (0usize, 0usize, 0usize);
    for dialect in Dialect::ALL {
        let sqlancer = campaign("SQLancer", dialect, units, DEFAULT_SEED).corpus_affinities;
        let squirrel = campaign("SQUIRREL", dialect, units, DEFAULT_SEED).corpus_affinities;
        let lego = campaign("LEGO", dialect, units, DEFAULT_SEED).corpus_affinities;
        t_sqlancer += sqlancer;
        t_squirrel += squirrel;
        t_lego += lego;
        rows.push(vec![
            dialect.name().to_string(),
            sqlancer.to_string(),
            squirrel.to_string(),
            lego.to_string(),
        ]);
        out.push(Row {
            dialect: dialect.name().to_string(),
            sqlancer,
            squirrel,
            lego,
        });
    }
    rows.push(vec![
        "Total".into(),
        t_sqlancer.to_string(),
        t_squirrel.to_string(),
        t_lego.to_string(),
    ]);
    rows.push(vec![
        "Increment (LEGO -)".into(),
        (t_lego.saturating_sub(t_sqlancer)).to_string(),
        (t_lego.saturating_sub(t_squirrel)).to_string(),
        "-".into(),
    ]);
    print_table(&["DBMS", "SQLancer", "SQUIRREL", "LEGO"], &rows);
    println!("\n(SQLsmith excluded: one statement per test case, hence zero affinities.)");
    save_json("table2_affinities", &out);
}
