//! Emit a regression corpus: one minimal crashing reproducer per planted
//! bug, written to `corpus/regression/<identifier>.sql`.
//!
//! Mirrors the paper's § V.B outcome, where PostgreSQL developers "added new
//! test cases which have the SQL Type Sequence CREATE RULE → NOTIFY → COPY →
//! WITH to do regression test". Replay any file with
//! `lego_cli replay <dbms> <file>`.

use lego::reduce::reduce_case;
use lego_dbms::{bugs, Dbms};
use lego_sqlast::{Dialect, TestCase};
use std::path::PathBuf;

fn main() {
    let out = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| lego_bench::results_dir().join("../corpus/regression"));
    std::fs::create_dir_all(&out).expect("create corpus dir");
    let mut written = 0usize;
    let mut missed: Vec<&str> = Vec::new();
    for bug in bugs::manifest() {
        let script = match bug.special {
            Some(_) => Some(
                lego_sqlparser::parse_script(
                    "CREATE TABLE v0 (v1 INT);\n\
                     CREATE RULE r0 AS ON INSERT TO v0 DO INSTEAD NOTIFY ch;\n\
                     COPY (SELECT 1) TO STDOUT;\n\
                     WITH w AS (INSERT INTO v0 VALUES (1)) DELETE FROM v0 WHERE v1 = 0;",
                )
                .expect("case-study script"),
            ),
            None => craft(bug),
        };
        let Some(case) = script else {
            missed.push(&bug.identifier);
            continue;
        };
        let crash = match Dbms::new(bug.dialect).execute_case(&case).crash().cloned() {
            Some(c) => c,
            None => {
                missed.push(&bug.identifier);
                continue;
            }
        };
        let (reduced, _) = reduce_case(&case, bug.dialect, &crash);
        let name = bug.identifier.replace([' ', '#', '/'], "_").to_ascii_lowercase();
        let header = format!(
            "-- {} | {} | {} | {}\n",
            crash.identifier,
            bug.dialect.name(),
            bug.component.name(),
            bug.bug_type.name()
        );
        std::fs::write(out.join(format!("{name}.sql")), header + &reduced.to_sql())
            .expect("write reproducer");
        written += 1;
    }
    println!("wrote {written} reproducers to {} ({} not crafted)", out.display(), missed.len());
    if !missed.is_empty() {
        println!("not crafted: {missed:?}");
    }
}

/// Craft a triggering script for a pattern bug (same construction as the
/// `bug_reachability` integration test).
fn craft(bug: &bugs::BugSpec) -> Option<TestCase> {
    use bugs::StateReq;
    let mut statements = Vec::new();
    statements.push(lego_sqlparser::parse_statement("CREATE TABLE t0 (a INT, b INT);").ok()?);
    statements.push(lego_sqlparser::parse_statement("INSERT INTO t0 VALUES (1, 1), (2, 2);").ok()?);
    match bug.state {
        StateReq::TriggerExists => statements.push(
            lego_sqlparser::parse_statement(
                "CREATE TRIGGER tr0 AFTER DELETE ON t0 FOR EACH ROW DELETE FROM t0;",
            )
            .ok()?,
        ),
        StateReq::RuleExists => statements.push(
            lego_sqlparser::parse_statement("CREATE RULE r0 AS ON DELETE TO t0 DO NOTHING;")
                .ok()?,
        ),
        StateReq::InTransaction => statements.push(lego_sqlparser::parse_statement("BEGIN;").ok()?),
        StateReq::IndexExists => {
            statements.push(lego_sqlparser::parse_statement("CREATE INDEX ix0 ON t0 (a);").ok()?)
        }
        StateReq::ViewExists => statements
            .push(lego_sqlparser::parse_statement("CREATE VIEW vw0 AS SELECT a FROM t0;").ok()?),
        _ => {}
    }
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(900 + bug.id as u64);
    let mut schema = lego::gen::SchemaModel::new();
    for s in &statements {
        schema.observe(s);
    }
    for (i, &kind) in bug.pattern.iter().enumerate() {
        let structural =
            if i + 1 == bug.pattern.len() { bug.structural } else { bugs::Structural::Any };
        let stmt = crafted_stmt(kind, structural, &schema, bug.dialect, &mut rng);
        schema.observe(&stmt);
        statements.push(stmt);
    }
    Some(TestCase::new(statements))
}

fn crafted_stmt(
    kind: lego_sqlast::StmtKind,
    structural: bugs::Structural,
    schema: &lego::gen::SchemaModel,
    dialect: Dialect,
    rng: &mut rand::rngs::SmallRng,
) -> lego_sqlast::Statement {
    use bugs::Structural;
    use lego_sqlast::kind::StandaloneKind as K;
    use lego_sqlast::StmtKind;
    // For the structural-sensitive shapes reuse simple SQL text; everything
    // else comes from the generator.
    let sql = match (kind, structural) {
        (StmtKind::Other(K::Select), Structural::WindowFunction) => {
            Some("SELECT LEAD(a) OVER (ORDER BY a) FROM t0;")
        }
        (StmtKind::Other(K::Select), Structural::GroupBy) => {
            Some("SELECT a, COUNT(*) FROM t0 GROUP BY a;")
        }
        (StmtKind::Other(K::Select), Structural::OrderBy) => Some("SELECT * FROM t0 ORDER BY a;"),
        (StmtKind::Other(K::Select), Structural::WhereClause) => {
            Some("SELECT * FROM t0 WHERE a > 0;")
        }
        (StmtKind::Other(K::Select), Structural::Distinct) => Some("SELECT DISTINCT a FROM t0;"),
        (StmtKind::Other(K::Select), Structural::Join) => {
            Some("SELECT * FROM t0 AS x CROSS JOIN t0 AS y;")
        }
        (StmtKind::Other(K::Select), Structural::SetOperation) => {
            Some("SELECT a FROM t0 UNION ALL SELECT b FROM t0;")
        }
        (StmtKind::Other(K::SelectV), _) => Some("SELECTV * FROM t0;"),
        (StmtKind::Other(K::Insert), Structural::InsertIgnore) => {
            Some("INSERT IGNORE INTO t0 VALUES (3, 3);")
        }
        (StmtKind::Other(K::Insert), _) => Some("INSERT INTO t0 VALUES (3, 3);"),
        (StmtKind::Other(K::Update), Structural::WhereClause) => {
            Some("UPDATE t0 SET a = 9 WHERE a >= 0;")
        }
        (StmtKind::Other(K::Update), _) => Some("UPDATE t0 SET a = 9;"),
        (StmtKind::Other(K::Delete), Structural::WhereClause) => {
            Some("DELETE FROM t0 WHERE a < 0;")
        }
        (StmtKind::Other(K::Delete), _) => Some("DELETE FROM t0 WHERE a < -999;"),
        _ => None,
    };
    match sql {
        Some(text) => lego_sqlparser::parse_statement(text).expect("crafted SQL"),
        None => lego::gen::gen_statement(kind, schema, dialect, rng),
    }
}
