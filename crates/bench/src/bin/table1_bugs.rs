//! Table I: the continuous-fuzzing bug inventory.
//!
//! Runs LEGO with several RNG seeds and an extended budget per DBMS (the
//! stand-in for two weeks of continuous fuzzing) and reports the union of
//! deduplicated bugs, grouped by DBMS / component / bug type with their
//! identifiers — the same layout as the paper's Table I, which reports 102
//! bugs (PostgreSQL 6, MySQL 21, MariaDB 42, Comdb2 33) and 22 CVEs.

use lego_bench::*;
use lego_dbms::bugs;
use lego_sqlast::Dialect;
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize, Clone)]
struct Found {
    dialect: String,
    component: String,
    bug_type: String,
    identifier: String,
}

fn main() {
    let units: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(CONTINUOUS_BUDGET_UNITS);
    let seeds: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(3);
    println!(
        "Table I — continuous fuzzing with LEGO ({seeds} campaigns x {units} units per DBMS)\n"
    );
    // One campaign per (DBMS, seed) pair, all in parallel — the paper runs
    // each fuzzer instance in its own docker container on one core.
    let (found, per_dbms): (Vec<Found>, BTreeMap<String, usize>) = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for dialect in Dialect::ALL {
            for s in 0..seeds {
                handles.push(scope.spawn(move || {
                    (dialect, campaign("LEGO", dialect, units, DEFAULT_SEED + s as u64 * 7717))
                }));
            }
        }
        let mut found_local: Vec<Found> = Vec::new();
        let mut per: BTreeMap<String, std::collections::BTreeSet<String>> = BTreeMap::new();
        for h in handles {
            let (dialect, stats) = h.join().expect("campaign thread");
            let ids = per.entry(dialect.name().to_string()).or_default();
            for b in &stats.bugs {
                if ids.insert(b.crash.identifier.clone()) {
                    found_local.push(Found {
                        dialect: dialect.name().to_string(),
                        component: b.crash.component.name().to_string(),
                        bug_type: format!("{:?}", b.crash.bug_type).to_uppercase(),
                        identifier: b.crash.identifier.clone(),
                    });
                }
            }
        }
        (found_local, per.into_iter().map(|(k, v)| (k, v.len())).collect())
    });

    // Group like the paper: DBMS + component -> type counts + identifiers.
    let mut groups: BTreeMap<(String, String), (BTreeMap<String, usize>, Vec<String>)> =
        BTreeMap::new();
    for f in &found {
        let e = groups.entry((f.dialect.clone(), f.component.clone())).or_default();
        *e.0.entry(f.bug_type.clone()).or_insert(0) += 1;
        e.1.push(f.identifier.clone());
    }
    let mut rows = Vec::new();
    for ((dbms, comp), (types, idents)) in &groups {
        let types_s = types
            .iter()
            .map(|(t, n)| format!("{t}({n})"))
            .collect::<Vec<_>>()
            .join(", ");
        rows.push(vec![dbms.clone(), comp.clone(), types_s, idents.join(", ")]);
    }
    print_table(&["DBMS", "Component", "Bug Type and Number", "Identifier"], &rows);

    let total = found.len();
    let cves = found.iter().filter(|f| f.identifier.starts_with("CVE-")).count();
    println!("\nFound {total} distinct bugs ({cves} CVE-identified) out of {} planted.", bugs::manifest().len());
    for (d, n) in &per_dbms {
        let planted = match d.as_str() {
            "PostgreSQL" => 6,
            "MySQL" => 21,
            "MariaDB" => 42,
            _ => 33,
        };
        println!("  {d}: {n} / {planted}");
    }
    save_json("table1_bugs", &found);
}
