//! Table I: the continuous-fuzzing bug inventory.
//!
//! Runs LEGO with several RNG seeds and an extended budget per DBMS (the
//! stand-in for two weeks of continuous fuzzing) and reports the union of
//! deduplicated bugs, grouped by DBMS / component / bug type with their
//! identifiers — the same layout as the paper's Table I, which reports 102
//! bugs (PostgreSQL 6, MySQL 21, MariaDB 42, Comdb2 33) and 22 CVEs.

use lego_bench::grid::{run_grid, Cli};
use lego_bench::*;
use lego_dbms::bugs;
use lego_sqlast::Dialect;
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize, Clone)]
struct Found {
    dialect: String,
    component: String,
    bug_type: String,
    identifier: String,
}

fn main() {
    let cli = Cli::parse();
    let units: usize = cli.arg(0, CONTINUOUS_BUDGET_UNITS);
    let seeds: usize = cli.arg(1, 3);
    println!(
        "Table I — continuous fuzzing with LEGO ({seeds} campaigns x {units} units per DBMS, {} workers)\n",
        cli.workers
    );
    // One campaign cell per (DBMS, seed) pair, fanned over the worker pool —
    // the paper runs each fuzzer instance in its own docker container on one
    // core.
    let specs: Vec<(Dialect, usize)> =
        Dialect::ALL.into_iter().flat_map(|d| (0..seeds).map(move |s| (d, s))).collect();
    let mut guard = build_telemetry(&cli, DEFAULT_SEED);
    let tel = &guard.tel;
    let oracles = cli.oracles;
    // Grid cells run concurrently in one process, so each gets its own WAL
    // subdirectory (the recovery oracle journals per worker index, and every
    // serial cell is worker 0). The WAL location never influences findings.
    let wal_base = oracles.recovery.then(|| {
        cli.wal_dir.as_ref().map(std::path::PathBuf::from).unwrap_or_else(|| {
            std::env::temp_dir().join(format!("lego-wal-{}", std::process::id()))
        })
    });
    let jobs: Vec<_> = specs
        .iter()
        .map(|&(dialect, s)| {
            let cell_wal = wal_base
                .as_ref()
                .map(|base| base.join(format!("{}_s{s}", dialect.name().to_lowercase())));
            move || {
                campaign_durable(
                    "LEGO",
                    dialect,
                    units,
                    DEFAULT_SEED + s as u64 * 7717,
                    tel,
                    oracles,
                    cell_wal.as_deref(),
                )
            }
        })
        .collect();
    let all_stats = run_grid(jobs, cli.workers);
    guard.finish();

    let mut found: Vec<Found> = Vec::new();
    let mut per: BTreeMap<String, std::collections::BTreeSet<String>> = BTreeMap::new();
    for (&(dialect, _), stats) in specs.iter().zip(&all_stats) {
        let ids = per.entry(dialect.name().to_string()).or_default();
        for b in &stats.bugs {
            if ids.insert(b.crash.identifier.clone()) {
                found.push(Found {
                    dialect: dialect.name().to_string(),
                    component: b.crash.component.name().to_string(),
                    bug_type: format!("{:?}", b.crash.bug_type).to_uppercase(),
                    identifier: b.crash.identifier.clone(),
                });
            }
        }
    }
    let per_dbms: BTreeMap<String, usize> = per.into_iter().map(|(k, v)| (k, v.len())).collect();

    // Group like the paper: DBMS + component -> type counts + identifiers.
    type Group = (BTreeMap<String, usize>, Vec<String>);
    let mut groups: BTreeMap<(String, String), Group> = BTreeMap::new();
    for f in &found {
        let e = groups.entry((f.dialect.clone(), f.component.clone())).or_default();
        *e.0.entry(f.bug_type.clone()).or_insert(0) += 1;
        e.1.push(f.identifier.clone());
    }
    let mut rows = Vec::new();
    for ((dbms, comp), (types, idents)) in &groups {
        let types_s = types.iter().map(|(t, n)| format!("{t}({n})")).collect::<Vec<_>>().join(", ");
        rows.push(vec![dbms.clone(), comp.clone(), types_s, idents.join(", ")]);
    }
    print_table(&["DBMS", "Component", "Bug Type and Number", "Identifier"], &rows);

    let total = found.len();
    let cves = found.iter().filter(|f| f.identifier.starts_with("CVE-")).count();
    println!(
        "\nFound {total} distinct bugs ({cves} CVE-identified) out of {} planted.",
        bugs::manifest().len()
    );
    if oracles.enabled() {
        let checks: usize = all_stats.iter().map(|s| s.oracle_checks).sum();
        let logic: usize = all_stats.iter().map(|s| s.logic_bugs.len()).sum();
        println!(
            "Correctness oracles: {checks} checks, {logic} wrong-result findings \
             (0 expected on the clean engine)."
        );
        if oracles.recovery {
            let durability: usize = all_stats.iter().map(|s| s.durability_bugs).sum();
            println!(
                "Durability: {durability} recovery findings (0 expected on the clean engine)."
            );
        }
    }
    for (d, n) in &per_dbms {
        let planted = match d.as_str() {
            "PostgreSQL" => 6,
            "MySQL" => 21,
            "MariaDB" => 42,
            _ => 33,
        };
        println!("  {d}: {n} / {planted}");
    }
    save_json("table1_bugs", &found);
}
