//! `lego-cli` — drive the fuzzer from the command line.
//!
//! ```text
//! lego_cli fuzz <pg|mysql|maria|comdb2> [--fuzzer NAME] [--units N] [--seed S]
//!               [--out DIR] [--corpus DIR]   # --corpus: resume from saved seeds
//!               [--rule-cov]                 # grammar-rule coverage feedback
//!               [--sema]                     # static sequence analyzer
//!               [--telemetry PATH] [--heartbeat] [--oracles[=LIST]] [--wal-dir DIR]
//!               [--serve ADDR] [--trace PATH] [--plot-data PATH] [--plot-every MS]
//!               [--checkpoint DIR] [--checkpoint-every N] [--resume DIR]
//! lego_cli replay <pg|mysql|maria|comdb2> <script.sql>
//! lego_cli reduce <pg|mysql|maria|comdb2> <script.sql>
//! lego_cli bugs  [pg|mysql|maria|comdb2]
//! ```
//!
//! `--telemetry PATH` (or `LEGO_TELEMETRY`) streams structured events to
//! `PATH` as JSONL and writes metrics exports next to it; `--heartbeat`
//! prints a ~1 Hz live status line to stderr.
//!
//! `--serve ADDR` (or `LEGO_SERVE`) starts the live monitoring HTTP server
//! (`/metrics` Prometheus text, `/status` JSON, `/events` SSE, `/healthz`)
//! and records AFL-style plot data under `results/<run>/`; `--trace PATH`
//! (or `LEGO_TRACE`) writes a Perfetto-loadable Chrome trace of the stage
//! spans at exit. The monitoring plane is read-only: findings, corpus, and
//! checkpoints are byte-identical with or without it.
//!
//! `--oracles` enables the wrong-result correctness oracles (TLP, NoREC and
//! cross-dialect differential replay) on every corpus-accepted case;
//! `--oracles=tlp,norec,differential,recovery` selects a subset. The
//! `recovery` durability oracle is opt-in only: it journals every statement
//! to a write-ahead log, simulates a crash at a deterministic mid-sequence
//! point (clean record boundary and torn mid-record truncation), replays the
//! log into a fresh engine, and reports any post-recovery state divergence.
//! `--wal-dir DIR` (or `LEGO_WAL_DIR`) chooses where the per-worker WAL
//! files live (default: a per-process temp directory). Deduplicated logic
//! and durability bugs are reported next to crash bugs and written as
//! reproducers with `--out`.
//!
//! A `fuzz --out DIR` run writes `campaign.json`, one reduced reproducer per
//! bug, and the retained seed corpus under `DIR/corpus/`; a later run with
//! `--corpus DIR/corpus` resumes from it (the paper's continuous-fuzzing
//! workflow).
//!
//! `--rule-cov` adds the grammar-rule coverage dimension: every non-aborted
//! case is re-parsed through the instrumented grammar and cases that
//! traverse never-seen rule→rule edges are admitted to the corpus even when
//! the branch map reports nothing new (the LEGO engine additionally mines
//! their type-affinities and schedules a FuzzySQL-style "special features"
//! seed pack). Off by default; with the flag absent the campaign is
//! byte-identical to previous releases.
//!
//! `--sema` runs every generated case through the static sequence analyzer
//! (`lego-sqlsema`) before execution: cases with a provably-invalid
//! statement are charged to the budget but never executed (a deterministic
//! 1-in-16 audit slice still runs, feeding the analyzer-vs-engine
//! conformance oracle, whose divergence findings ride the logic-bug
//! channel). The LEGO engine additionally repairs dangling references in
//! mutants and prunes implausible synthesis candidates with the same
//! analyzer. Off by default; with the flag absent the campaign is
//! byte-identical to previous releases.
//!
//! `--checkpoint DIR` persists the complete campaign state to `DIR` every
//! `--checkpoint-every N` units (default: a tenth of the budget); a later
//! `--resume DIR` with the *same* seed, budget, and cadence continues the
//! interrupted campaign and produces the byte-identical deterministic
//! report of an uninterrupted run.

use lego::campaign::{run_campaign_sema, Budget, FuzzEngine};
use lego::checkpoint::{load_campaign_checkpoint, CheckpointCfg};
use lego::corpus_io::{load_corpus, save_corpus};
use lego::fuzzer::{Config, LegoFuzzer};
use lego::oracle::OracleKind;
use lego::reduce::reduce_case;
use lego::OracleConfig;
use lego_baselines::engine_by_name;
use lego_bench::grid::parse_oracles;
use lego_dbms::{bugs, Dbms};
use lego_sqlast::Dialect;
use std::path::PathBuf;
use std::process::ExitCode;

fn dialect_of(arg: &str) -> Option<Dialect> {
    match arg {
        "pg" | "postgres" | "postgresql" => Some(Dialect::Postgres),
        "mysql" => Some(Dialect::MySql),
        "maria" | "mariadb" => Some(Dialect::MariaDb),
        "comdb2" => Some(Dialect::Comdb2),
        _ => None,
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  lego_cli fuzz   <pg|mysql|maria|comdb2> [--fuzzer NAME] [--units N] [--seed S] [--out DIR]\n                  [--corpus DIR] [--rule-cov] [--sema] [--telemetry PATH] [--heartbeat]\n                  [--oracles[=tlp,norec,differential,recovery]] [--wal-dir DIR]\n                  [--serve ADDR] [--trace PATH] [--plot-data PATH] [--plot-every MS]\n                  [--checkpoint DIR] [--checkpoint-every N] [--resume DIR]\n  lego_cli replay <pg|mysql|maria|comdb2> <script.sql>\n  lego_cli reduce <pg|mysql|maria|comdb2> <script.sql>\n  lego_cli bugs   [pg|mysql|maria|comdb2]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("reduce") => cmd_reduce(&args[1..]),
        Some("bugs") => cmd_bugs(&args[1..]),
        _ => usage(),
    }
}

fn cmd_fuzz(args: &[String]) -> ExitCode {
    let Some(dialect) = args.first().and_then(|a| dialect_of(a)) else {
        return usage();
    };
    let mut fuzzer = "LEGO".to_string();
    let mut units = 400_000usize;
    let mut seed = 0x1e60u64;
    let mut out: Option<PathBuf> = None;
    let mut corpus_dir: Option<PathBuf> = None;
    let mut telemetry: Option<PathBuf> =
        std::env::var("LEGO_TELEMETRY").ok().filter(|p| !p.is_empty()).map(PathBuf::from);
    let mut heartbeat = false;
    let mut oracles = OracleConfig::disabled();
    let mut wal_dir: Option<PathBuf> =
        std::env::var("LEGO_WAL_DIR").ok().filter(|p| !p.is_empty()).map(PathBuf::from);
    let mut serve: Option<String> = std::env::var("LEGO_SERVE").ok().filter(|a| !a.is_empty());
    let mut trace: Option<PathBuf> =
        std::env::var("LEGO_TRACE").ok().filter(|p| !p.is_empty()).map(PathBuf::from);
    let mut plot_data: Option<PathBuf> = None;
    let mut plot_every_ms = 1000u64;
    let mut checkpoint_dir: Option<PathBuf> = None;
    let mut checkpoint_every: Option<usize> = None;
    let mut resume_dir: Option<PathBuf> = None;
    let mut rule_cov = false;
    let mut sema = false;
    let mut i = 1;
    while i + 1 < args.len() + 1 {
        match args.get(i).map(String::as_str) {
            Some("--fuzzer") => {
                fuzzer = args.get(i + 1).cloned().unwrap_or(fuzzer);
                i += 2;
            }
            Some("--units") => {
                units = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(units);
                i += 2;
            }
            Some("--seed") => {
                seed = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(seed);
                i += 2;
            }
            Some("--out") => {
                out = args.get(i + 1).map(PathBuf::from);
                i += 2;
            }
            Some("--corpus") => {
                corpus_dir = args.get(i + 1).map(PathBuf::from);
                i += 2;
            }
            Some("--telemetry") => {
                telemetry = args.get(i + 1).map(PathBuf::from);
                i += 2;
            }
            Some("--serve") => {
                serve = args.get(i + 1).cloned();
                i += 2;
            }
            Some("--trace") => {
                trace = args.get(i + 1).map(PathBuf::from);
                i += 2;
            }
            Some("--plot-data") => {
                plot_data = args.get(i + 1).map(PathBuf::from);
                i += 2;
            }
            Some("--plot-every") => {
                plot_every_ms =
                    args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(plot_every_ms).max(10);
                i += 2;
            }
            Some("--checkpoint") => {
                checkpoint_dir = args.get(i + 1).map(PathBuf::from);
                i += 2;
            }
            Some("--checkpoint-every") => {
                checkpoint_every = args.get(i + 1).and_then(|v| v.parse().ok());
                i += 2;
            }
            Some("--resume") => {
                resume_dir = args.get(i + 1).map(PathBuf::from);
                i += 2;
            }
            Some("--heartbeat") => {
                heartbeat = true;
                i += 1;
            }
            Some("--rule-cov") => {
                rule_cov = true;
                i += 1;
            }
            Some("--sema") => {
                sema = true;
                i += 1;
            }
            Some("--oracles") => {
                oracles = OracleConfig::all();
                i += 1;
            }
            Some(spec) if spec.starts_with("--oracles=") => {
                oracles = parse_oracles(&spec["--oracles=".len()..]);
                i += 1;
            }
            Some("--wal-dir") => {
                wal_dir = args.get(i + 1).map(PathBuf::from);
                i += 2;
            }
            Some(spec) if spec.starts_with("--wal-dir=") => {
                wal_dir = Some(PathBuf::from(&spec["--wal-dir=".len()..]));
                i += 1;
            }
            Some(other) => {
                eprintln!("unknown flag {other}");
                return usage();
            }
            None => break,
        }
    }
    // Hidden smoke-test hooks: `LEGO_PLANT_FAULT=wal-drop-last` plants the
    // torn-write fault so scripts/check_durability.sh can validate the whole
    // detect→dedup→reduce→artifact pipeline against a binary that is
    // actually wrong; `LEGO_PLANT_FAULT=sema-overaccept` plants the
    // over-accepting analyzer bug so scripts/check_sema.sh can do the same
    // for the conformance oracle. Deliberately env-only (not flags): they
    // are never part of a real campaign, and the warning keeps an inherited
    // env var loud.
    let mut _wal_fault = None;
    let mut _sema_fault = None;
    match std::env::var("LEGO_PLANT_FAULT").ok().as_deref() {
        Some("wal-drop-last") => {
            eprintln!("WARNING: planted fault 'wal-drop-last' active (LEGO_PLANT_FAULT)");
            _wal_fault = Some(lego_dbms::faults::FaultGuard::enable_wal_drops_last_record());
        }
        Some("sema-overaccept") => {
            eprintln!("WARNING: planted fault 'sema-overaccept' active (LEGO_PLANT_FAULT)");
            _sema_fault = Some(lego_sqlsema::faults::FaultGuard::enable_overaccept_commit());
        }
        Some(other) if !other.is_empty() => {
            eprintln!(
                "unknown LEGO_PLANT_FAULT '{other}' (supported: wal-drop-last, sema-overaccept)"
            );
            return ExitCode::from(2);
        }
        _ => {}
    };
    println!("fuzzing {} with {fuzzer} for {units} units (seed {seed})…", dialect.name());
    let mut engine: Box<dyn FuzzEngine> = match &corpus_dir {
        Some(dir) if fuzzer == "LEGO" => {
            let (corpus, skipped) = load_corpus(dir).expect("load corpus");
            if !skipped.is_empty() {
                eprintln!("skipped {} unparseable corpus files", skipped.len());
            }
            println!("resuming from {} seeds in {}", corpus.len(), dir.display());
            let cfg = Config { rng_seed: seed, rule_cov, sema, ..Config::default() };
            Box::new(LegoFuzzer::with_corpus(dialect, cfg, corpus))
        }
        Some(_) => {
            eprintln!("--corpus is only supported for the LEGO engine");
            return ExitCode::from(2);
        }
        // The engine-side rule_cov/sema switches (special seed pack,
        // rule-novelty boosting, dependency-aware mutation repair) are
        // LEGO-only; baselines still get the campaign-side rule map,
        // corpus-admission widening, and static skip/conformance checks.
        None if (rule_cov || sema) && fuzzer == "LEGO" => {
            let cfg = Config { rng_seed: seed, rule_cov, sema, ..Config::default() };
            Box::new(LegoFuzzer::new(dialect, cfg))
        }
        None => engine_by_name(&fuzzer, dialect, seed),
    };
    if rule_cov {
        println!("grammar-rule coverage feedback enabled");
    }
    if sema {
        println!("static sequence analyzer enabled");
    }
    if oracles.enabled() {
        let mut kinds = Vec::new();
        if oracles.tlp {
            kinds.push("TLP");
        }
        if oracles.norec {
            kinds.push("NoREC");
        }
        if oracles.differential {
            kinds.push("differential");
        }
        if oracles.recovery {
            kinds.push("recovery");
        }
        println!("correctness oracles enabled: {}", kinds.join(", "));
        if oracles.recovery {
            if let Some(dir) = &wal_dir {
                println!("recovery-oracle WAL directory: {}", dir.display());
            }
        }
    }
    // Checkpoint/resume wiring. A --resume directory is also where further
    // checkpoints go (unless --checkpoint overrides it), so a run can be
    // interrupted and resumed repeatedly. The cadence is part of campaign
    // configuration (each boundary reseeds the engine RNG): on resume it
    // defaults to the cadence recorded in the checkpoint.
    let mut ckpt = CheckpointCfg::disabled();
    if let Some(dir) = &resume_dir {
        let resume = match load_campaign_checkpoint(dir) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cannot resume from {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        };
        if resume.meta.dialect != dialect.name() {
            eprintln!(
                "checkpoint is for {}, this run targets {}",
                resume.meta.dialect,
                dialect.name()
            );
            return ExitCode::FAILURE;
        }
        if resume.meta.budget_units != units {
            eprintln!(
                "checkpoint was taken under a {}-unit budget, this run asks for {units}",
                resume.meta.budget_units
            );
            return ExitCode::FAILURE;
        }
        println!(
            "resuming from checkpoint {} in {} ({} units done)",
            resume.workers[0].seq,
            dir.display(),
            resume.workers[0].units
        );
        ckpt.every_units = checkpoint_every.unwrap_or(resume.meta.every_units);
        ckpt.dir = Some(checkpoint_dir.clone().unwrap_or_else(|| dir.clone()));
        ckpt.resume = Some(resume);
    } else if let Some(dir) = checkpoint_dir {
        ckpt.every_units = checkpoint_every.unwrap_or((units / 10).max(1));
        ckpt.dir = Some(dir);
    }
    let mut guard = lego_bench::build_monitored(lego_bench::MonitorOpts {
        event_log: telemetry,
        heartbeat,
        workers: 1,
        seed,
        serve,
        trace,
        plot_data,
        plot_every_ms,
        run_name: format!("fuzz_{}", dialect.name()),
    });
    let stats = match run_campaign_sema(
        engine.as_mut(),
        dialect,
        Budget::units(units),
        &guard.tel,
        oracles,
        &ckpt,
        wal_dir.as_deref(),
        rule_cov,
        sema,
    ) {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("campaign failed: {e}");
            guard.finish();
            return ExitCode::FAILURE;
        }
    };
    guard.finish();
    println!(
        "executed {} cases | {} branches | {} affinities | {} retained seeds | {:.1}% valid stmts | {} bugs",
        stats.execs,
        stats.branches,
        stats.corpus_affinities,
        stats.corpus_size,
        stats.validity_pct(),
        stats.bugs.len()
    );
    if rule_cov {
        // Kept on its own line: scripts/check_rule_cov.sh scrapes it.
        println!("rule branches: {}", stats.rule_branches);
    }
    if sema {
        // Each on its own line: scripts/check_sema.sh scrapes them.
        println!("sema rejects: {}", stats.sema_rejects);
        println!("sema skipped statements: {}", stats.sema_skipped_stmts);
        println!("sema divergences: {}", stats.sema_divergences);
        println!("raw validity: {:.1}% over all generated statements", stats.raw_validity_pct());
        for lb in stats.logic_bugs.iter().filter(|f| f.bug.oracle == OracleKind::Sema) {
            println!(
                "  [{}] {} at exec #{}: {}",
                lb.bug.oracle.name(),
                lb.bug.identifier(),
                lb.first_exec,
                lb.bug.detail
            );
        }
    }
    for bug in &stats.bugs {
        println!(
            "  [{}] {} in {} at exec #{}",
            bug.crash.identifier,
            bug.crash.bug_type.name(),
            bug.crash.component.name(),
            bug.first_exec
        );
    }
    if oracles.enabled() {
        println!("oracle checks: {} | logic bugs: {}", stats.oracle_checks, stats.logic_bugs.len());
        if oracles.recovery {
            // Kept on its own line: tooling scrapes the `oracle checks:` line.
            println!("durability bugs: {}", stats.durability_bugs);
        }
        for lb in &stats.logic_bugs {
            println!(
                "  [{}] {} at exec #{}: {}",
                lb.bug.oracle.name(),
                lb.bug.identifier(),
                lb.first_exec,
                lb.bug.detail
            );
        }
    }
    if let Some(dir) = out {
        std::fs::create_dir_all(&dir).expect("create out dir");
        let report = serde_json::to_string_pretty(&stats).expect("serialize");
        std::fs::write(dir.join("campaign.json"), report).expect("write campaign.json");
        for bug in &stats.bugs {
            let name = bug.crash.identifier.replace([' ', '#', '/'], "_").to_ascii_lowercase();
            std::fs::write(dir.join(format!("{name}.sql")), &bug.reduced_sql)
                .expect("write reproducer");
        }
        for lb in &stats.logic_bugs {
            let name = format!(
                "logic_{}_{:016x}",
                lb.bug.oracle.name().to_ascii_lowercase(),
                lb.fingerprint()
            );
            std::fs::write(dir.join(format!("{name}.sql")), &lb.reduced_sql)
                .expect("write logic-bug reproducer");
        }
        let n = save_corpus(&dir.join("corpus"), &engine.corpus()).expect("save corpus");
        println!("reports + {n}-seed corpus written to {}", dir.display());
    }
    ExitCode::SUCCESS
}

fn cmd_replay(args: &[String]) -> ExitCode {
    let (Some(dialect), Some(path)) = (args.first().and_then(|a| dialect_of(a)), args.get(1))
    else {
        return usage();
    };
    let sql = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut db = Dbms::new(dialect);
    let report = db.execute_script(&sql);
    println!(
        "executed {} statements, {} errors, {} branches",
        report.statements_executed,
        report.errors.len(),
        report.coverage.edge_count()
    );
    for e in &report.errors {
        println!("  error: {e}");
    }
    match report.crash() {
        Some(crash) => {
            println!(
                "CRASH: [{}] {} in {}",
                crash.identifier,
                crash.bug_type.name(),
                crash.component.name()
            );
            for frame in &crash.stack {
                println!("  at {frame}");
            }
            ExitCode::FAILURE
        }
        None => ExitCode::SUCCESS,
    }
}

fn cmd_reduce(args: &[String]) -> ExitCode {
    let (Some(dialect), Some(path)) = (args.first().and_then(|a| dialect_of(a)), args.get(1))
    else {
        return usage();
    };
    let sql = std::fs::read_to_string(path).expect("read script");
    let case = match lego_sqlparser::parse_script(&sql) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let crash = match Dbms::new(dialect).execute_case(&case).crash().cloned() {
        Some(c) => c,
        None => {
            eprintln!("script does not crash {}", dialect.name());
            return ExitCode::FAILURE;
        }
    };
    let (reduced, execs) = reduce_case(&case, dialect, &crash);
    eprintln!(
        "reduced {} -> {} statements in {execs} executions ({}):",
        case.len(),
        reduced.len(),
        crash.identifier
    );
    print!("{}", reduced.to_sql());
    ExitCode::SUCCESS
}

fn cmd_bugs(args: &[String]) -> ExitCode {
    let filter = args.first().and_then(|a| dialect_of(a));
    for bug in bugs::manifest() {
        if let Some(d) = filter {
            if bug.dialect != d {
                continue;
            }
        }
        println!(
            "{:<22} {:<10} {:<9} {:<9} {:?}",
            bug.identifier,
            bug.dialect.name(),
            bug.component.name(),
            bug.bug_type.name(),
            bug.pattern.iter().map(|k| k.name()).collect::<Vec<_>>()
        );
    }
    ExitCode::SUCCESS
}
