//! Campaign throughput measurement: executions per second for the serial
//! path and the sharded parallel path, plus the resulting speedup.
//!
//! Usage: `bench_throughput [UNITS] [--workers N]`. Writes
//! `BENCH_throughput.json` at the repository root.

use lego_bench::grid::Cli;
use lego_bench::*;
use lego_sqlast::Dialect;
use serde::Serialize;

#[derive(Serialize)]
struct Run {
    workers: usize,
    execs: usize,
    units: usize,
    branches: usize,
    wall_ms: u64,
    execs_per_sec: f64,
}

#[derive(Serialize)]
struct Report {
    dialect: String,
    fuzzer: String,
    budget_units: usize,
    serial: Run,
    parallel: Run,
    speedup: f64,
}

fn run_of(s: &lego::campaign::CampaignStats) -> Run {
    Run {
        workers: s.workers,
        execs: s.execs,
        units: s.units,
        branches: s.branches,
        wall_ms: s.wall_ms,
        execs_per_sec: s.execs_per_sec,
    }
}

fn main() {
    let cli = Cli::parse();
    let units: usize = cli.arg(0, 200_000);
    let workers = cli.workers.max(2);
    let dialect = Dialect::Postgres;

    println!("Campaign throughput — LEGO on {} ({units} units)\n", dialect.name());
    let serial = campaign_parallel("LEGO", dialect, units, DEFAULT_SEED, 1);
    println!(
        "  serial   : {:>8} execs in {:>6} ms  ({:>8.0} execs/s)",
        serial.execs, serial.wall_ms, serial.execs_per_sec
    );
    let parallel = campaign_parallel("LEGO", dialect, units, DEFAULT_SEED, workers);
    println!(
        "  {}-worker : {:>8} execs in {:>6} ms  ({:>8.0} execs/s)",
        workers, parallel.execs, parallel.wall_ms, parallel.execs_per_sec
    );

    let speedup = if serial.execs_per_sec > 0.0 {
        parallel.execs_per_sec / serial.execs_per_sec
    } else {
        0.0
    };
    println!("\n  throughput speedup at {workers} workers: {speedup:.2}x");

    let report = Report {
        dialect: dialect.name().to_string(),
        fuzzer: "LEGO".into(),
        budget_units: units,
        serial: run_of(&serial),
        parallel: run_of(&parallel),
        speedup,
    };
    let path = repo_root().join("BENCH_throughput.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&path, json).expect("write report");
    println!("\n[report written to {}]", path.display());
}
