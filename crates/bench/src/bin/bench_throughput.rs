//! Campaign throughput measurement: executions per second for the serial
//! path and the sharded parallel path, plus the resulting speedup and a
//! per-stage wall-clock profile of each run.
//!
//! Usage: `bench_throughput [UNITS] [--workers N] [--telemetry PATH]
//! [--heartbeat]`. Writes `BENCH_throughput.json` at the repository root.
//! With `--telemetry ev.jsonl` the serial and parallel event streams land at
//! `ev.serial.jsonl` and `ev.parallel.jsonl`.

use lego::observe::{StageProfile, Telemetry};
use lego_bench::grid::Cli;
use lego_bench::*;
use lego_sqlast::Dialect;
use serde::Serialize;
use std::path::Path;

#[derive(Serialize)]
struct Run {
    workers: usize,
    execs: usize,
    units: usize,
    branches: usize,
    wall_ms: u64,
    execs_per_sec: f64,
    stage_profile: Option<StageProfile>,
}

#[derive(Serialize)]
struct Report {
    dialect: String,
    fuzzer: String,
    budget_units: usize,
    serial: Run,
    parallel: Run,
    speedup: f64,
}

fn run_of(s: &lego::campaign::CampaignStats) -> Run {
    Run {
        workers: s.workers,
        execs: s.execs,
        units: s.units,
        branches: s.branches,
        wall_ms: s.wall_ms,
        execs_per_sec: s.execs_per_sec,
        stage_profile: s.stage_profile.clone(),
    }
}

/// One fresh telemetry handle per measured run: stage accumulators are
/// cumulative per handle, so serial and parallel must not share one. With
/// no telemetry flags the handle still profiles (events discarded).
fn run_telemetry(cli: &Cli, tag: &str, workers: usize) -> (Telemetry, Option<TelemetryGuard>) {
    if cli.telemetry.is_none() && !cli.heartbeat {
        return (Telemetry::profile_only(), None);
    }
    let path = cli.telemetry.as_ref().map(|p| Path::new(p).with_extension(format!("{tag}.jsonl")));
    let guard = telemetry_to(path.as_deref(), cli.heartbeat, workers, DEFAULT_SEED);
    (guard.tel.clone(), Some(guard))
}

fn profiled(cli: &Cli, tag: &str, units: usize, workers: usize) -> lego::campaign::CampaignStats {
    let dialect = Dialect::Postgres;
    let (tel, guard) = run_telemetry(cli, tag, workers);
    let stats = campaign_parallel_observed("LEGO", dialect, units, DEFAULT_SEED, workers, &tel);
    if let Some(mut g) = guard {
        g.finish();
    }
    stats
}

fn print_profile(label: &str, profile: &Option<StageProfile>) {
    let Some(p) = profile else { return };
    let line = p
        .stages
        .iter()
        .filter(|s| s.total_ms > 0.0 || s.share_pct > 0.0)
        .map(|s| format!("{} {:.0}%", s.stage, s.share_pct))
        .collect::<Vec<_>>()
        .join(", ");
    println!("  {label} stage profile: {line}");
}

fn main() {
    let cli = Cli::parse();
    let units: usize = cli.arg(0, 200_000);
    let workers = cli.workers.max(2);
    let dialect = Dialect::Postgres;

    println!("Campaign throughput — LEGO on {} ({units} units)\n", dialect.name());
    let serial = profiled(&cli, "serial", units, 1);
    println!(
        "  serial   : {:>8} execs in {:>6} ms  ({:>8.0} execs/s)",
        serial.execs, serial.wall_ms, serial.execs_per_sec
    );
    let parallel = profiled(&cli, "parallel", units, workers);
    println!(
        "  {}-worker : {:>8} execs in {:>6} ms  ({:>8.0} execs/s)",
        workers, parallel.execs, parallel.wall_ms, parallel.execs_per_sec
    );
    print_profile("serial", &serial.stage_profile);
    print_profile("parallel", &parallel.stage_profile);

    let speedup = if serial.execs_per_sec > 0.0 {
        parallel.execs_per_sec / serial.execs_per_sec
    } else {
        0.0
    };
    println!("\n  throughput speedup at {workers} workers: {speedup:.2}x");

    let report = Report {
        dialect: dialect.name().to_string(),
        fuzzer: "LEGO".into(),
        budget_units: units,
        serial: run_of(&serial),
        parallel: run_of(&parallel),
        speedup,
    };
    let path = repo_root().join("BENCH_throughput.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&path, json).expect("write report");
    println!("\n[report written to {}]", path.display());
}
