//! Table IV: the LEGO vs LEGO- ablation — type-affinities found and branches
//! covered per DBMS, alongside each dialect's statement-type inventory size.
//!
//! Paper shape: LEGO ahead on both metrics everywhere; improvements grow
//! with the statement-type count (+20% / +15% / +25% / +7% branches on
//! PostgreSQL / MySQL / MariaDB / Comdb2), with Comdb2's 24 types capping
//! its headroom.

use lego_bench::*;
use lego::campaign::{run_campaign, Budget};
use lego::fuzzer::{Config, LegoFuzzer};
use lego_sqlast::Dialect;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dialect: String,
    types: usize,
    affinities_minus: usize,
    affinities_lego: usize,
    affinity_increment: i64,
    branches_minus: usize,
    branches_lego: usize,
    branch_improvement_pct: f64,
}

fn main() {
    let units: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DAY_BUDGET_UNITS);
    let seeds: u64 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(3);
    println!("Table IV — LEGO- vs LEGO ablation ({units} units, mean of {seeds} seeds)\n");
    let mut out = Vec::new();
    let mut rows = Vec::new();
    for dialect in Dialect::ALL {
        let mut acc = [0usize; 4]; // aff-, aff, br-, br
        for s in 0..seeds {
            let mut cfg = Config::default();
            cfg.rng_seed = DEFAULT_SEED + s * 7717;
            let mut lego = LegoFuzzer::new(dialect, cfg.clone());
            let s_lego = run_campaign(&mut lego, dialect, Budget::units(units));
            let mut minus = LegoFuzzer::lego_minus(dialect, cfg);
            let s_minus = run_campaign(&mut minus, dialect, Budget::units(units));
            acc[0] += s_minus.corpus_affinities;
            acc[1] += s_lego.corpus_affinities;
            acc[2] += s_minus.branches;
            acc[3] += s_lego.branches;
        }
        let n = seeds as usize;
        let (am, al, bm, bl) = (acc[0] / n, acc[1] / n, acc[2] / n, acc[3] / n);
        let row = Row {
            dialect: dialect.name().to_string(),
            types: dialect.statement_type_count(),
            affinities_minus: am,
            affinities_lego: al,
            affinity_increment: al as i64 - am as i64,
            branches_minus: bm,
            branches_lego: bl,
            branch_improvement_pct: pct_more(bl, bm),
        };
        rows.push(vec![
            row.dialect.clone(),
            row.types.to_string(),
            row.affinities_minus.to_string(),
            row.affinities_lego.to_string(),
            format!("{:+}", row.affinity_increment),
            row.branches_minus.to_string(),
            row.branches_lego.to_string(),
            format!("{:+.0}%", row.branch_improvement_pct),
        ]);
        out.push(row);
    }
    print_table(
        &["DBMS", "Types", "Aff(LEGO-)", "Aff(LEGO)", "Increment", "Br(LEGO-)", "Br(LEGO)", "Improvement"],
        &rows,
    );
    save_json("table4_ablation", &out);
}
