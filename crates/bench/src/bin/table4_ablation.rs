//! Table IV: the LEGO vs LEGO- ablation — type-affinities found and branches
//! covered per DBMS, alongside each dialect's statement-type inventory size.
//!
//! Paper shape: LEGO ahead on both metrics everywhere; improvements grow
//! with the statement-type count (+20% / +15% / +25% / +7% branches on
//! PostgreSQL / MySQL / MariaDB / Comdb2), with Comdb2's 24 types capping
//! its headroom.
//!
//! Usage: `table4_ablation [UNITS] [SEEDS] [--workers N] [--rule-cov]
//! [--sema]` — the dialect×seed×variant cells run across a worker pool;
//! results are identical for any worker count. With `--rule-cov` a third
//! variant (LEGO plus grammar-rule coverage feedback) joins the grid and the
//! table gains its branch and rule-edge columns — the ablation recipe from
//! EXPERIMENTS.md §rule-coverage. With `--sema` a variant running the static
//! sequence analyzer joins instead/as well, adding branch, static-reject and
//! skipped-statement columns — the ablation recipe from EXPERIMENTS.md
//! §static-analysis.

use lego::campaign::{run_campaign_full, run_campaign_observed, run_campaign_sema, Budget};
use lego::checkpoint::CheckpointCfg;
use lego::fuzzer::{Config, LegoFuzzer};
use lego::OracleConfig;
use lego_bench::grid::{run_grid, Cli};
use lego_bench::*;
use lego_sqlast::Dialect;
use serde::Serialize;

/// Cell variants, in grid order. `Rule` only joins under `--rule-cov`,
/// `Sema` under `--sema`.
#[derive(Clone, Copy, PartialEq)]
enum Variant {
    Minus,
    Lego,
    Rule,
    Sema,
}

#[derive(Serialize)]
struct Row {
    dialect: String,
    types: usize,
    affinities_minus: usize,
    affinities_lego: usize,
    affinity_increment: i64,
    branches_minus: usize,
    branches_lego: usize,
    branch_improvement_pct: f64,
    /// Mean branches of the rule-coverage variant (0 without `--rule-cov`).
    branches_rule: usize,
    /// Mean grammar-rule edges of the rule-coverage variant (0 without
    /// `--rule-cov`).
    rule_branches: usize,
    /// Mean branches of the static-analyzer variant (0 without `--sema`).
    branches_sema: usize,
    /// Mean statically-rejected statements of the static-analyzer variant
    /// (0 without `--sema`).
    sema_rejects: usize,
    /// Mean statements skipped before execution by the static-analyzer
    /// variant (0 without `--sema`).
    sema_skipped_stmts: usize,
    wall_ms: u64,
}

fn main() {
    let cli = Cli::parse();
    let units: usize = cli.arg(0, DAY_BUDGET_UNITS);
    let seeds: u64 = cli.arg(1, 3);
    let mut variant_list = vec![Variant::Minus, Variant::Lego];
    if cli.rule_cov {
        variant_list.push(Variant::Rule);
    }
    if cli.sema {
        variant_list.push(Variant::Sema);
    }
    let variants: &[Variant] = &variant_list;
    println!(
        "Table IV — LEGO- vs LEGO ablation ({units} units, mean of {seeds} seeds, {} workers{}{})\n",
        cli.workers,
        if cli.rule_cov { ", +rule-cov variant" } else { "" },
        if cli.sema { ", +sema variant" } else { "" }
    );

    // The grid: (dialect, seed, variant) campaign cells in fixed order.
    let specs: Vec<(Dialect, u64, Variant)> = Dialect::ALL
        .into_iter()
        .flat_map(|d| (0..seeds).flat_map(move |s| variants.iter().map(move |&v| (d, s, v))))
        .collect();
    let mut guard = build_telemetry(&cli, DEFAULT_SEED);
    let tel = &guard.tel;
    let jobs: Vec<_> = specs
        .iter()
        .map(|&(dialect, s, variant)| {
            move || {
                let rng_seed = DEFAULT_SEED + s * 7717;
                match variant {
                    Variant::Minus => {
                        let cfg = Config { rng_seed, ..Config::default() };
                        let mut engine = LegoFuzzer::lego_minus(dialect, cfg);
                        run_campaign_observed(&mut engine, dialect, Budget::units(units), tel)
                    }
                    Variant::Lego => {
                        let cfg = Config { rng_seed, ..Config::default() };
                        let mut engine = LegoFuzzer::new(dialect, cfg);
                        run_campaign_observed(&mut engine, dialect, Budget::units(units), tel)
                    }
                    Variant::Rule => {
                        let cfg = Config { rng_seed, rule_cov: true, ..Config::default() };
                        let mut engine = LegoFuzzer::new(dialect, cfg);
                        run_campaign_full(
                            &mut engine,
                            dialect,
                            Budget::units(units),
                            tel,
                            OracleConfig::disabled(),
                            &CheckpointCfg::disabled(),
                            None,
                            true,
                        )
                        .expect("rule-cov campaign without checkpointing cannot fail")
                    }
                    Variant::Sema => {
                        let cfg = Config { rng_seed, sema: true, ..Config::default() };
                        let mut engine = LegoFuzzer::new(dialect, cfg);
                        run_campaign_sema(
                            &mut engine,
                            dialect,
                            Budget::units(units),
                            tel,
                            OracleConfig::disabled(),
                            &CheckpointCfg::disabled(),
                            None,
                            false,
                            true,
                        )
                        .expect("sema campaign without checkpointing cannot fail")
                    }
                }
            }
        })
        .collect();
    let stats = run_grid(jobs, cli.workers);
    guard.finish();

    let mut out = Vec::new();
    let mut rows = Vec::new();
    for dialect in Dialect::ALL {
        let mut acc = [0usize; 9]; // aff-, aff, br-, br, br+rule, rule-edges,
                                   // br+sema, sema-rejects, sema-skipped
        let mut wall_ms = 0u64;
        for (&(d, _, variant), s) in specs.iter().zip(&stats) {
            if d != dialect {
                continue;
            }
            match variant {
                Variant::Minus => {
                    acc[0] += s.corpus_affinities;
                    acc[2] += s.branches;
                }
                Variant::Lego => {
                    acc[1] += s.corpus_affinities;
                    acc[3] += s.branches;
                }
                Variant::Rule => {
                    acc[4] += s.branches;
                    acc[5] += s.rule_branches;
                }
                Variant::Sema => {
                    acc[6] += s.branches;
                    acc[7] += s.sema_rejects;
                    acc[8] += s.sema_skipped_stmts;
                }
            }
            wall_ms += s.wall_ms;
        }
        let n = seeds as usize;
        let (am, al, bm, bl) = (acc[0] / n, acc[1] / n, acc[2] / n, acc[3] / n);
        let row = Row {
            dialect: dialect.name().to_string(),
            types: dialect.statement_type_count(),
            affinities_minus: am,
            affinities_lego: al,
            affinity_increment: al as i64 - am as i64,
            branches_minus: bm,
            branches_lego: bl,
            branch_improvement_pct: pct_more(bl, bm),
            branches_rule: acc[4] / n,
            rule_branches: acc[5] / n,
            branches_sema: acc[6] / n,
            sema_rejects: acc[7] / n,
            sema_skipped_stmts: acc[8] / n,
            wall_ms,
        };
        let mut cells = vec![
            row.dialect.clone(),
            row.types.to_string(),
            row.affinities_minus.to_string(),
            row.affinities_lego.to_string(),
            format!("{:+}", row.affinity_increment),
            row.branches_minus.to_string(),
            row.branches_lego.to_string(),
            format!("{:+.0}%", row.branch_improvement_pct),
        ];
        if cli.rule_cov {
            cells.push(row.branches_rule.to_string());
            cells.push(row.rule_branches.to_string());
        }
        if cli.sema {
            cells.push(row.branches_sema.to_string());
            cells.push(row.sema_rejects.to_string());
            cells.push(row.sema_skipped_stmts.to_string());
        }
        rows.push(cells);
        out.push(row);
    }
    let mut headers = vec![
        "DBMS",
        "Types",
        "Aff(LEGO-)",
        "Aff(LEGO)",
        "Increment",
        "Br(LEGO-)",
        "Br(LEGO)",
        "Improvement",
    ];
    if cli.rule_cov {
        headers.push("Br(+rule)");
        headers.push("RuleEdges");
    }
    if cli.sema {
        headers.push("Br(+sema)");
        headers.push("SemaRejects");
        headers.push("SemaSkipped");
    }
    print_table(&headers, &rows);
    save_json("table4_ablation", &out);
}
