//! Table IV: the LEGO vs LEGO- ablation — type-affinities found and branches
//! covered per DBMS, alongside each dialect's statement-type inventory size.
//!
//! Paper shape: LEGO ahead on both metrics everywhere; improvements grow
//! with the statement-type count (+20% / +15% / +25% / +7% branches on
//! PostgreSQL / MySQL / MariaDB / Comdb2), with Comdb2's 24 types capping
//! its headroom.
//!
//! Usage: `table4_ablation [UNITS] [SEEDS] [--workers N]` — the
//! dialect×seed×variant cells run across a worker pool; results are
//! identical for any worker count.

use lego::campaign::{run_campaign_observed, Budget};
use lego::fuzzer::{Config, LegoFuzzer};
use lego_bench::grid::{run_grid, Cli};
use lego_bench::*;
use lego_sqlast::Dialect;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dialect: String,
    types: usize,
    affinities_minus: usize,
    affinities_lego: usize,
    affinity_increment: i64,
    branches_minus: usize,
    branches_lego: usize,
    branch_improvement_pct: f64,
    wall_ms: u64,
}

fn main() {
    let cli = Cli::parse();
    let units: usize = cli.arg(0, DAY_BUDGET_UNITS);
    let seeds: u64 = cli.arg(1, 3);
    println!(
        "Table IV — LEGO- vs LEGO ablation ({units} units, mean of {seeds} seeds, {} workers)\n",
        cli.workers
    );

    // The grid: (dialect, seed, ablated?) campaign cells in fixed order.
    let specs: Vec<(Dialect, u64, bool)> = Dialect::ALL
        .into_iter()
        .flat_map(|d| (0..seeds).flat_map(move |s| [(d, s, false), (d, s, true)]))
        .collect();
    let mut guard = build_telemetry(&cli, DEFAULT_SEED);
    let tel = &guard.tel;
    let jobs: Vec<_> = specs
        .iter()
        .map(|&(dialect, s, minus)| {
            move || {
                let cfg = Config { rng_seed: DEFAULT_SEED + s * 7717, ..Config::default() };
                let mut engine = if minus {
                    LegoFuzzer::lego_minus(dialect, cfg)
                } else {
                    LegoFuzzer::new(dialect, cfg)
                };
                run_campaign_observed(&mut engine, dialect, Budget::units(units), tel)
            }
        })
        .collect();
    let stats = run_grid(jobs, cli.workers);
    guard.finish();

    let mut out = Vec::new();
    let mut rows = Vec::new();
    for dialect in Dialect::ALL {
        let mut acc = [0usize; 4]; // aff-, aff, br-, br
        let mut wall_ms = 0u64;
        for (&(d, _, minus), s) in specs.iter().zip(&stats) {
            if d != dialect {
                continue;
            }
            let (ai, bi) = if minus { (0, 2) } else { (1, 3) };
            acc[ai] += s.corpus_affinities;
            acc[bi] += s.branches;
            wall_ms += s.wall_ms;
        }
        let n = seeds as usize;
        let (am, al, bm, bl) = (acc[0] / n, acc[1] / n, acc[2] / n, acc[3] / n);
        let row = Row {
            dialect: dialect.name().to_string(),
            types: dialect.statement_type_count(),
            affinities_minus: am,
            affinities_lego: al,
            affinity_increment: al as i64 - am as i64,
            branches_minus: bm,
            branches_lego: bl,
            branch_improvement_pct: pct_more(bl, bm),
            wall_ms,
        };
        rows.push(vec![
            row.dialect.clone(),
            row.types.to_string(),
            row.affinities_minus.to_string(),
            row.affinities_lego.to_string(),
            format!("{:+}", row.affinity_increment),
            row.branches_minus.to_string(),
            row.branches_lego.to_string(),
            format!("{:+.0}%", row.branch_improvement_pct),
        ]);
        out.push(row);
    }
    print_table(
        &[
            "DBMS",
            "Types",
            "Aff(LEGO-)",
            "Aff(LEGO)",
            "Increment",
            "Br(LEGO-)",
            "Br(LEGO)",
            "Improvement",
        ],
        &rows,
    );
    save_json("table4_ablation", &out);
}
