//! Design-knob ablation (DESIGN.md § 7): how LEGO's scheduling parameters
//! trade off against each other on MariaDB — instantiations per synthesized
//! sequence, synthesis cap per affinity, and conventional mutants per seed.
//!
//! Usage: `knob_ablation [UNITS] [--workers N]` — one grid cell per knob
//! setting; results are identical for any worker count.

use lego::campaign::{run_campaign_observed, Budget};
use lego::fuzzer::{Config, LegoFuzzer};
use lego_bench::grid::{run_grid, Cli};
use lego_bench::*;
use lego_sqlast::Dialect;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    knob: String,
    value: usize,
    branches: usize,
    affinities: usize,
    bugs: usize,
    wall_ms: u64,
}

type Mutation = Box<dyn Fn(&mut Config) + Send + Sync>;

fn main() {
    let cli = Cli::parse();
    let units: usize = cli.arg(0, DAY_BUDGET_UNITS / 2);
    println!("Design-knob ablation on MariaDB ({units} units per cell, {} workers)\n", cli.workers);

    let mut specs: Vec<(String, usize, Mutation)> = Vec::new();
    for v in [1usize, 2, 4] {
        specs.push((
            "instantiations_per_seq".into(),
            v,
            Box::new(move |c| c.instantiations_per_seq = v),
        ));
    }
    for v in [12usize, 48, 128] {
        specs.push((
            "synth_limit_per_affinity".into(),
            v,
            Box::new(move |c| c.synth_limit_per_affinity = v),
        ));
    }
    for v in [2usize, 6, 12] {
        specs.push((
            "conventional_per_seed".into(),
            v,
            Box::new(move |c| c.conventional_per_seed = v),
        ));
    }
    specs.push(("baseline".into(), 0, Box::new(|_| {})));
    specs.push(("no_split_long_seeds".into(), 0, Box::new(|c| c.split_long_seeds = false)));
    specs.push(("nonadjacent_affinities".into(), 0, Box::new(|c| c.nonadjacent_affinities = true)));

    let mut guard = build_telemetry(&cli, DEFAULT_SEED);
    let tel = &guard.tel;
    let jobs: Vec<_> = specs
        .iter()
        .map(|(_, _, mutate)| {
            move || {
                let mut cfg = Config { rng_seed: DEFAULT_SEED, ..Config::default() };
                mutate(&mut cfg);
                let mut fz = LegoFuzzer::new(Dialect::MariaDb, cfg);
                run_campaign_observed(&mut fz, Dialect::MariaDb, Budget::units(units), tel)
            }
        })
        .collect();
    let stats = run_grid(jobs, cli.workers);
    guard.finish();

    let mut out = Vec::new();
    let mut rows = Vec::new();
    for ((knob, value, _), s) in specs.iter().zip(&stats) {
        let shown_value = if *value == 0 { "-".to_string() } else { value.to_string() };
        rows.push(vec![
            knob.clone(),
            shown_value,
            s.branches.to_string(),
            s.corpus_affinities.to_string(),
            s.bugs.len().to_string(),
        ]);
        out.push(Row {
            knob: knob.clone(),
            value: *value,
            branches: s.branches,
            affinities: s.corpus_affinities,
            bugs: s.bugs.len(),
            wall_ms: s.wall_ms,
        });
    }
    print_table(&["knob", "value", "branches", "affinities", "bugs"], &rows);
    save_json("knob_ablation", &out);
}
