//! Design-knob ablation (DESIGN.md § 7): how LEGO's scheduling parameters
//! trade off against each other on MariaDB — instantiations per synthesized
//! sequence, synthesis cap per affinity, and conventional mutants per seed.

use lego_bench::*;
use lego::campaign::{run_campaign, Budget};
use lego::fuzzer::{Config, LegoFuzzer};
use lego_sqlast::Dialect;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    knob: String,
    value: usize,
    branches: usize,
    affinities: usize,
    bugs: usize,
}

fn run_with(mutate: impl Fn(&mut Config), units: usize) -> (usize, usize, usize) {
    let mut cfg = Config::default();
    cfg.rng_seed = DEFAULT_SEED;
    mutate(&mut cfg);
    let mut fz = LegoFuzzer::new(Dialect::MariaDb, cfg);
    let stats = run_campaign(&mut fz, Dialect::MariaDb, Budget::units(units));
    (stats.branches, stats.corpus_affinities, stats.bugs.len())
}

fn main() {
    let units: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DAY_BUDGET_UNITS / 2);
    println!("Design-knob ablation on MariaDB ({units} units per cell)\n");
    let mut out = Vec::new();
    let mut rows = Vec::new();
    for v in [1usize, 2, 4] {
        let (b, a, g) = run_with(|c| c.instantiations_per_seq = v, units);
        rows.push(vec!["instantiations_per_seq".into(), v.to_string(), b.to_string(), a.to_string(), g.to_string()]);
        out.push(Row { knob: "instantiations_per_seq".into(), value: v, branches: b, affinities: a, bugs: g });
    }
    for v in [12usize, 48, 128] {
        let (b, a, g) = run_with(|c| c.synth_limit_per_affinity = v, units);
        rows.push(vec!["synth_limit_per_affinity".into(), v.to_string(), b.to_string(), a.to_string(), g.to_string()]);
        out.push(Row { knob: "synth_limit_per_affinity".into(), value: v, branches: b, affinities: a, bugs: g });
    }
    for v in [2usize, 6, 12] {
        let (b, a, g) = run_with(|c| c.conventional_per_seed = v, units);
        rows.push(vec!["conventional_per_seed".into(), v.to_string(), b.to_string(), a.to_string(), g.to_string()]);
        out.push(Row { knob: "conventional_per_seed".into(), value: v, branches: b, affinities: a, bugs: g });
    }
    for (name, f) in [
        ("baseline", Box::new(|_c: &mut Config| {}) as Box<dyn Fn(&mut Config)>),
        ("no_split_long_seeds", Box::new(|c: &mut Config| c.split_long_seeds = false)),
        ("nonadjacent_affinities", Box::new(|c: &mut Config| c.nonadjacent_affinities = true)),
    ] {
        let (b, a, g) = run_with(|c| f(c), units);
        rows.push(vec![name.into(), "-".into(), b.to_string(), a.to_string(), g.to_string()]);
        out.push(Row { knob: name.into(), value: 0, branches: b, affinities: a, bugs: g });
    }
    print_table(&["knob", "value", "branches", "affinities", "bugs"], &rows);
    save_json("knob_ablation", &out);
}
