//! Figure 9: branches covered by LEGO, SQUIRREL, SQLancer, and SQLsmith on
//! the four DBMSs over one "24-hour" budget.
//!
//! Expected shape (paper: LEGO covers 198% / 44% / 120% more branches than
//! SQLancer / SQLsmith / SQUIRREL on average): LEGO first everywhere, with
//! SQLsmith the strongest baseline on PostgreSQL.

use lego_bench::*;
use lego_sqlast::Dialect;
use serde::Serialize;

#[derive(Serialize)]
struct Fig9Cell {
    dialect: String,
    fuzzer: String,
    branches: usize,
    execs: usize,
    curve: Vec<(usize, usize)>,
}

fn main() {
    let units: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DAY_BUDGET_UNITS);
    println!("Figure 9 — branches covered in one budgeted campaign ({units} units ~ 24h)\n");
    let mut cells: Vec<Fig9Cell> = Vec::new();
    let mut rows = Vec::new();
    for dialect in Dialect::ALL {
        let mut row = vec![dialect.name().to_string()];
        let mut lego_branches = 0usize;
        let mut others: Vec<(String, usize)> = Vec::new();
        for fuzzer in fuzzer_names(dialect) {
            let stats = campaign(fuzzer, dialect, units, DEFAULT_SEED);
            if fuzzer == "LEGO" {
                lego_branches = stats.branches;
            } else {
                others.push((fuzzer.to_string(), stats.branches));
            }
            row.push(stats.branches.to_string());
            cells.push(Fig9Cell {
                dialect: dialect.name().to_string(),
                fuzzer: fuzzer.to_string(),
                branches: stats.branches,
                execs: stats.execs,
                curve: stats.coverage_curve,
            });
        }
        if dialect != Dialect::Postgres {
            row.push("-".into());
        }
        rows.push(row);
        for (name, b) in others {
            println!(
                "  {}: LEGO covers {:+.0}% vs {}",
                dialect.name(),
                pct_more(lego_branches, b),
                name
            );
        }
    }
    println!();
    print_table(&["DBMS", "LEGO", "SQUIRREL", "SQLancer", "SQLsmith"], &rows);

    // ASCII coverage-over-time curves per DBMS (the figure itself).
    for dialect in Dialect::ALL {
        println!("\n{} — branches over statement units:", dialect.name());
        let dcells: Vec<&Fig9Cell> =
            cells.iter().filter(|c| c.dialect == dialect.name()).collect();
        let max = dcells.iter().map(|c| c.branches).max().unwrap_or(1).max(1);
        for c in dcells {
            let bar = "#".repeat((c.branches * 50 / max).max(1));
            println!("  {:<9} {:>7} {}", c.fuzzer, c.branches, bar);
        }
    }
    save_json("fig9_coverage", &cells);
}
