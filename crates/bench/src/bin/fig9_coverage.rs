//! Figure 9: branches covered by LEGO, SQUIRREL, SQLancer, and SQLsmith on
//! the four DBMSs over one "24-hour" budget.
//!
//! Expected shape (paper: LEGO covers 198% / 44% / 120% more branches than
//! SQLancer / SQLsmith / SQUIRREL on average): LEGO first everywhere, with
//! SQLsmith the strongest baseline on PostgreSQL.
//!
//! Usage: `fig9_coverage [UNITS] [--workers N]` — the fuzzer×dialect cells
//! run across a worker pool; results are identical for any worker count.

use lego_bench::grid::{run_grid, Cli};
use lego_bench::*;
use lego_sqlast::Dialect;
use serde::Serialize;

#[derive(Serialize)]
struct Fig9Cell {
    dialect: String,
    fuzzer: String,
    branches: usize,
    execs: usize,
    wall_ms: u64,
    execs_per_sec: f64,
    curve: Vec<(usize, usize)>,
}

fn main() {
    let cli = Cli::parse();
    let units: usize = cli.arg(0, DAY_BUDGET_UNITS);
    println!(
        "Figure 9 — branches covered in one budgeted campaign ({units} units ~ 24h, {} workers)\n",
        cli.workers
    );

    // The grid: every (dialect, fuzzer) campaign cell, in fixed order.
    let pairs: Vec<(Dialect, &str)> = Dialect::ALL
        .into_iter()
        .flat_map(|d| fuzzer_names(d).into_iter().map(move |f| (d, f)))
        .collect();
    let mut guard = build_telemetry(&cli, DEFAULT_SEED);
    let tel = &guard.tel;
    let jobs: Vec<_> = pairs
        .iter()
        .map(|&(dialect, fuzzer)| {
            move || campaign_observed(fuzzer, dialect, units, DEFAULT_SEED, tel)
        })
        .collect();
    let stats = run_grid(jobs, cli.workers);
    guard.finish();

    let cells: Vec<Fig9Cell> = pairs
        .iter()
        .zip(&stats)
        .map(|(&(dialect, fuzzer), s)| Fig9Cell {
            dialect: dialect.name().to_string(),
            fuzzer: fuzzer.to_string(),
            branches: s.branches,
            execs: s.execs,
            wall_ms: s.wall_ms,
            execs_per_sec: s.execs_per_sec,
            curve: s.coverage_curve.clone(),
        })
        .collect();

    let mut rows = Vec::new();
    for dialect in Dialect::ALL {
        let dcells: Vec<&Fig9Cell> = cells.iter().filter(|c| c.dialect == dialect.name()).collect();
        let mut row = vec![dialect.name().to_string()];
        row.extend(dcells.iter().map(|c| c.branches.to_string()));
        if dialect != Dialect::Postgres {
            row.push("-".into());
        }
        rows.push(row);
        let lego_branches =
            dcells.iter().find(|c| c.fuzzer == "LEGO").map(|c| c.branches).unwrap_or(0);
        for c in dcells.iter().filter(|c| c.fuzzer != "LEGO") {
            println!(
                "  {}: LEGO covers {:+.0}% vs {}",
                dialect.name(),
                pct_more(lego_branches, c.branches),
                c.fuzzer
            );
        }
    }
    println!();
    print_table(&["DBMS", "LEGO", "SQUIRREL", "SQLancer", "SQLsmith"], &rows);

    // ASCII coverage-over-time curves per DBMS (the figure itself).
    for dialect in Dialect::ALL {
        println!("\n{} — branches over statement units:", dialect.name());
        let dcells: Vec<&Fig9Cell> = cells.iter().filter(|c| c.dialect == dialect.name()).collect();
        let max = dcells.iter().map(|c| c.branches).max().unwrap_or(1).max(1);
        for c in dcells {
            let bar = "#".repeat((c.branches * 50 / max).max(1));
            println!("  {:<9} {:>7} {}", c.fuzzer, c.branches, bar);
        }
    }
    save_json("fig9_coverage", &cells);
}
