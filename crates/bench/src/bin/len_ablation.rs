//! The § VI sequence-length experiment: LEGO on MariaDB with `LEN` set to
//! 3, 5, and 8.
//!
//! Paper: 30 / 35 / 27 bugs — cutting the length misses some bugs, while
//! increasing it also loses bugs to performance degradation. Expected shape:
//! a peak at LEN = 5.
//!
//! Usage: `len_ablation [UNITS] [SEEDS] [--workers N]` — one grid cell per
//! (LEN, seed) pair; results are identical for any worker count.

use lego::campaign::{run_campaign_observed, Budget};
use lego::fuzzer::{Config, LegoFuzzer};
use lego_bench::grid::{run_grid, Cli};
use lego_bench::*;
use lego_sqlast::Dialect;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    len: usize,
    bugs: usize,
    branches: usize,
    execs: usize,
    wall_ms: u64,
}

fn main() {
    let cli = Cli::parse();
    let units: usize = cli.arg(0, CONTINUOUS_BUDGET_UNITS);
    let seeds: usize = cli.arg(1, 2);
    println!(
        "§ VI length ablation — LEGO on MariaDB, LEN ∈ {{3, 5, 8}} ({seeds} x {units} units, {} workers)\n",
        cli.workers
    );

    let specs: Vec<(usize, usize)> =
        [3usize, 5, 8].into_iter().flat_map(|len| (0..seeds).map(move |s| (len, s))).collect();
    let mut guard = build_telemetry(&cli, DEFAULT_SEED);
    let tel = &guard.tel;
    let jobs: Vec<_> = specs
        .iter()
        .map(|&(len, s)| {
            move || {
                // The paper couples the seed-length budget to LEN.
                let cfg = Config {
                    max_seq_len: len,
                    max_case_len: len * 2,
                    rng_seed: DEFAULT_SEED + s as u64 * 7717,
                    ..Config::default()
                };
                let mut fz = LegoFuzzer::new(Dialect::MariaDb, cfg);
                run_campaign_observed(&mut fz, Dialect::MariaDb, Budget::units(units), tel)
            }
        })
        .collect();
    let all_stats = run_grid(jobs, cli.workers);
    guard.finish();

    let mut out = Vec::new();
    let mut rows = Vec::new();
    for len in [3usize, 5, 8] {
        let mut ids = std::collections::BTreeSet::new();
        let mut branches = 0;
        let mut execs = 0;
        let mut wall_ms = 0;
        for (&(l, _), stats) in specs.iter().zip(&all_stats) {
            if l != len {
                continue;
            }
            for b in &stats.bugs {
                ids.insert(b.crash.identifier.clone());
            }
            branches = branches.max(stats.branches);
            execs += stats.execs;
            wall_ms += stats.wall_ms;
        }
        rows.push(vec![
            len.to_string(),
            ids.len().to_string(),
            branches.to_string(),
            execs.to_string(),
        ]);
        out.push(Row { len, bugs: ids.len(), branches, execs, wall_ms });
    }
    print_table(&["LEN", "Bugs", "Branches(max)", "Execs"], &rows);
    save_json("len_ablation", &out);
}
