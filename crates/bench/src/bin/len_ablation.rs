//! The § VI sequence-length experiment: LEGO on MariaDB with `LEN` set to
//! 3, 5, and 8.
//!
//! Paper: 30 / 35 / 27 bugs — cutting the length misses some bugs, while
//! increasing it also loses bugs to performance degradation. Expected shape:
//! a peak at LEN = 5.

use lego_bench::*;
use lego::campaign::{run_campaign, Budget};
use lego::fuzzer::{Config, LegoFuzzer};
use lego_sqlast::Dialect;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    len: usize,
    bugs: usize,
    branches: usize,
    execs: usize,
}

fn main() {
    let units: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(CONTINUOUS_BUDGET_UNITS);
    let seeds: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(2);
    println!("§ VI length ablation — LEGO on MariaDB, LEN ∈ {{3, 5, 8}} ({seeds} x {units} units)\n");
    let mut out = Vec::new();
    let mut rows = Vec::new();
    for len in [3usize, 5, 8] {
        let mut ids = std::collections::BTreeSet::new();
        let mut branches = 0;
        let mut execs = 0;
        for s in 0..seeds {
            let mut cfg = Config::default();
            cfg.max_seq_len = len;
            // The paper couples the seed-length budget to LEN.
            cfg.max_case_len = len * 2;
            cfg.rng_seed = DEFAULT_SEED + s as u64 * 7717;
            let mut fz = LegoFuzzer::new(Dialect::MariaDb, cfg);
            let stats = run_campaign(&mut fz, Dialect::MariaDb, Budget::units(units));
            for b in &stats.bugs {
                ids.insert(b.crash.identifier.clone());
            }
            branches = branches.max(stats.branches);
            execs += stats.execs;
        }
        rows.push(vec![
            len.to_string(),
            ids.len().to_string(),
            branches.to_string(),
            execs.to_string(),
        ]);
        out.push(Row { len, bugs: ids.len(), branches, execs });
    }
    print_table(&["LEN", "Bugs", "Branches(max)", "Execs"], &rows);
    save_json("len_ablation", &out);
}
