//! Criterion benchmarks for the parallel-campaign tentpole:
//!
//! * `hot_path/*` — per-case engine cost with a fresh instance per case (the
//!   old behaviour) vs. the reset-and-recycle path the campaign loop uses.
//! * `grid/*` — a small Figure-9-style fuzzer×dialect grid at 1 vs. 4 grid
//!   workers.
//! * `sharded/*` — one campaign budget executed serially vs. sharded over 4
//!   in-campaign workers.
//! * `telemetry/*` — the same campaign with telemetry disabled vs. enabled
//!   with a `NoopSink`: the observability acceptance gate (overhead within
//!   noise).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lego::campaign::{run_campaign_observed, run_campaign_parallel, Budget, ParallelOpts};
use lego::observe::{NoopSink, Telemetry};
use lego_baselines::engine_by_name;
use lego_bench::grid::run_grid;
use lego_dbms::Dbms;
use lego_sqlast::Dialect;
use std::sync::Arc;
use std::time::Duration;

const SCRIPT: &str = "CREATE TABLE t1 (v1 INT, v2 INT, v3 VARCHAR(100));\n\
    CREATE INDEX i1 ON t1 (v1);\n\
    INSERT INTO t1 VALUES (1, 10, 'a'), (2, 20, 'b'), (3, 30, 'c');\n\
    UPDATE t1 SET v2 = v2 + 1 WHERE v1 > 1;\n\
    SELECT v3, COUNT(*) FROM t1 GROUP BY v3 HAVING COUNT(*) > 0;";

fn bench_hot_path(c: &mut Criterion) {
    let case = lego_sqlparser::parse_script(SCRIPT).unwrap();
    let mut group = c.benchmark_group("hot_path");
    group.bench_function("fresh_instance_per_case", |b| {
        b.iter(|| {
            let mut db = Dbms::new(Dialect::Postgres);
            db.execute_case(black_box(&case))
        })
    });
    group.bench_function("reset_and_recycle", |b| {
        let mut db = Dbms::new(Dialect::Postgres);
        b.iter(|| {
            db.reset();
            let report = db.execute_case(black_box(&case));
            let n = report.statements_executed;
            db.recycle(report.coverage);
            n
        })
    });
    group.finish();
}

fn fig9_like_grid(workers: usize) -> usize {
    let pairs: Vec<(Dialect, &str)> = Dialect::ALL
        .into_iter()
        .flat_map(|d| ["LEGO", "SQUIRREL"].into_iter().map(move |f| (d, f)))
        .collect();
    let jobs: Vec<_> = pairs
        .iter()
        .map(|&(d, f)| {
            move || {
                let mut engine = engine_by_name(f, d, 9);
                lego::campaign::run_campaign(engine.as_mut(), d, Budget::units(8_000)).branches
            }
        })
        .collect();
    run_grid(jobs, workers).into_iter().sum()
}

fn bench_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    group.bench_function("fig9_8cells_workers1", |b| b.iter(|| fig9_like_grid(1)));
    group.bench_function("fig9_8cells_workers4", |b| b.iter(|| fig9_like_grid(4)));
    group.finish();
}

fn sharded_campaign(workers: usize) -> usize {
    run_campaign_parallel(
        |w| {
            engine_by_name(
                "LEGO",
                Dialect::MariaDb,
                9 ^ (w as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            )
        },
        Dialect::MariaDb,
        Budget::units(40_000),
        ParallelOpts { workers, sync_every: 16 },
    )
    .branches
}

fn bench_sharded(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    group.bench_function("campaign_40k_workers1", |b| b.iter(|| sharded_campaign(1)));
    group.bench_function("campaign_40k_workers4", |b| b.iter(|| sharded_campaign(4)));
    group.finish();
}

fn observed_campaign(tel: &Telemetry) -> usize {
    let mut engine = engine_by_name("LEGO", Dialect::MariaDb, 9);
    run_campaign_observed(engine.as_mut(), Dialect::MariaDb, Budget::units(20_000), tel).branches
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    group.bench_function("campaign_20k_disabled", |b| {
        let tel = Telemetry::disabled();
        b.iter(|| observed_campaign(&tel))
    });
    group.bench_function("campaign_20k_noop_sink", |b| {
        let tel = Telemetry::builder().sink(Arc::new(NoopSink)).build();
        b.iter(|| observed_campaign(&tel))
    });
    group.finish();
}

/// Short sampling windows, as in `microbench.rs`.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .configure_from_args()
}

criterion_group! {
    name = campaign_throughput;
    config = quick();
    targets = bench_hot_path, bench_grid, bench_sharded, bench_telemetry_overhead
}
criterion_main!(campaign_throughput);
