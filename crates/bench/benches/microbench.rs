//! Criterion micro-benchmarks for the engineering-critical paths:
//! lexing/parsing throughput, coverage-map operations, Algorithm 3
//! synthesis, single-case engine execution, and a small end-to-end
//! fuzzing campaign per engine.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lego::affinity::AffinityMap;
use lego::campaign::{run_campaign, Budget};
use lego::fuzzer::{Config, LegoFuzzer};
use lego::gen::{gen_statement, SchemaModel};
use lego::instantiate::{instantiate, AstLibrary};
use lego::synthesis::SequenceStore;
use lego_baselines::engine_by_name;
use lego_coverage::{CovRecorder, GlobalCoverage, SiteId};
use lego_dbms::Dbms;
use lego_sqlast::Dialect;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Duration;

const SCRIPT: &str = "CREATE TABLE t1 (v1 INT, v2 INT, v3 VARCHAR(100));\n\
    CREATE INDEX i1 ON t1 (v1);\n\
    INSERT INTO t1 VALUES (1, 10, 'a'), (2, 20, 'b'), (3, 30, 'c');\n\
    UPDATE t1 SET v2 = v2 + 1 WHERE v1 > 1;\n\
    SELECT v3, COUNT(*) FROM t1 GROUP BY v3 HAVING COUNT(*) > 0;\n\
    SELECT * FROM t1 AS a JOIN t1 AS b ON a.v1 = b.v1 ORDER BY a.v1 DESC LIMIT 2;";

fn bench_parser(c: &mut Criterion) {
    c.bench_function("parse_6_statement_script", |b| {
        b.iter(|| lego_sqlparser::parse_script(black_box(SCRIPT)).unwrap())
    });
    let case = lego_sqlparser::parse_script(SCRIPT).unwrap();
    c.bench_function("render_6_statement_script", |b| b.iter(|| black_box(&case).to_sql()));
}

fn bench_coverage(c: &mut Criterion) {
    c.bench_function("coverage_record_1000_hits", |b| {
        b.iter(|| {
            let mut rec = CovRecorder::new();
            for i in 0..1000u64 {
                rec.hit(SiteId::from_raw(i * 2654435761));
            }
            rec.into_map()
        })
    });
    let mut rec = CovRecorder::new();
    for i in 0..500u64 {
        rec.hit(SiteId::from_raw(i * 2654435761));
    }
    let map = rec.into_map();
    c.bench_function("coverage_merge_500_edges", |b| {
        b.iter(|| {
            let mut g = GlobalCoverage::new();
            g.merge(black_box(&map))
        })
    });
}

fn bench_engine(c: &mut Criterion) {
    let case = lego_sqlparser::parse_script(SCRIPT).unwrap();
    c.bench_function("engine_execute_case_postgres", |b| {
        b.iter(|| {
            let mut db = Dbms::new(Dialect::Postgres);
            db.execute_case(black_box(&case))
        })
    });
    c.bench_function("engine_execute_script_parse_included", |b| {
        b.iter(|| {
            let mut db = Dbms::new(Dialect::MariaDb);
            db.execute_script(black_box(SCRIPT))
        })
    });
}

fn bench_synthesis(c: &mut Criterion) {
    let kinds = Dialect::Postgres.supported_kinds();
    c.bench_function("algorithm3_synthesis_20_affinities", |b| {
        b.iter(|| {
            let starters: Vec<_> =
                kinds.iter().copied().filter(|k| k.is_sequence_starter()).collect();
            let mut map = AffinityMap::new();
            let mut store = SequenceStore::new(5, &starters);
            for i in 0..20usize {
                let t1 = kinds[(i * 17) % kinds.len()];
                let t2 = kinds[(i * 31 + 7) % kinds.len()];
                if t1 != t2 && map.insert(t1, t2) {
                    store.on_new_affinity(t1, t2, &map, 64);
                }
            }
            store.len()
        })
    });
    c.bench_function("instantiate_len5_sequence", |b| {
        let lib = AstLibrary::new();
        let seq: Vec<_> = kinds.iter().copied().take(5).collect();
        let mut rng = SmallRng::seed_from_u64(3);
        b.iter(|| instantiate(black_box(&seq), &lib, Dialect::Postgres, &mut rng))
    });
}

fn bench_generation(c: &mut Criterion) {
    let schema = {
        let mut m = SchemaModel::new();
        m.observe(&lego_sqlparser::parse_statement("CREATE TABLE t (a INT, b TEXT);").unwrap());
        m
    };
    let kinds = Dialect::MariaDb.supported_kinds();
    c.bench_function("generate_statement_all_kinds", |b| {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % kinds.len();
            gen_statement(kinds[i], &schema, Dialect::MariaDb, &mut rng)
        })
    });
}

fn bench_campaigns(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_10k_units");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for name in ["LEGO", "SQUIRREL", "SQLancer"] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut engine = engine_by_name(name, Dialect::MariaDb, 9);
                run_campaign(engine.as_mut(), Dialect::MariaDb, Budget::units(10_000)).branches
            })
        });
    }
    group.bench_function("LEGO_postgres", |b| {
        b.iter(|| {
            let mut fz = LegoFuzzer::new(Dialect::Postgres, Config::default());
            run_campaign(&mut fz, Dialect::Postgres, Budget::units(10_000)).branches
        })
    });
    group.finish();
}

/// Short sampling windows: the default 5-second windows make the suite take
/// an hour on a shared single-core box without changing the conclusions.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .configure_from_args()
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_parser,
        bench_coverage,
        bench_engine,
        bench_synthesis,
        bench_generation,
        bench_campaigns
}
criterion_main!(benches);
