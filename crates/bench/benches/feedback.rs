//! Criterion group for the feedback-stage hot paths — the operations that
//! run once per executed case and used to dominate campaign wall time:
//! n-gram memory probes, affinity analysis, coverage classification
//! (sparse walk vs word scan), and the parallel coverage-sync publish.
//!
//! `scripts/check_bench_gate.sh` does not consume these numbers (it gates
//! on the end-to-end profile in `results/BENCH_throughput.json`); this group
//! exists to localize a regression once the gate trips.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lego::affinity::{corpus_affinities, AffinityMap};
use lego::campaign::FuzzEngine;
use lego::fuzzer::{Config, LegoFuzzer};
use lego::ngram::{pack_window, NgramSet};
use lego::seeds::initial_corpus;
use lego_coverage::{CovMap, CovRecorder, CoverageSink, GlobalCoverage, SiteId};
use lego_sqlast::{Dialect, StmtKind};
use std::time::Duration;

/// A deterministic stream of n-gram windows over the full kind alphabet,
/// shaped like real feedback traffic (mostly repeats, few novel keys).
fn window_stream(n: usize) -> Vec<Vec<StmtKind>> {
    let all = StmtKind::all();
    let mut x = 0x2545_f491_4f6c_dd1du64;
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let a = all[(x >> 33) as usize % all.len()];
            let b = all[(x >> 17) as usize % all.len()];
            if x & 1 == 0 {
                vec![a, b]
            } else {
                vec![a, b, all[(x >> 5) as usize % all.len()]]
            }
        })
        .collect()
}

fn run_of(sites: usize, stride: u64) -> CovMap {
    let mut rec = CovRecorder::new();
    for i in 0..sites as u64 {
        rec.hit(SiteId::from_raw(i.wrapping_mul(stride)));
    }
    rec.into_map()
}

fn bench_ngram(c: &mut Criterion) {
    let windows = window_stream(4096);
    c.bench_function("feedback/ngram_insert_4096_windows", |b| {
        b.iter(|| {
            let mut set = NgramSet::new();
            for w in &windows {
                set.insert(pack_window(black_box(w)));
            }
            set.len()
        })
    });
    let mut warm = NgramSet::new();
    for w in &windows {
        warm.insert(pack_window(w));
    }
    c.bench_function("feedback/ngram_probe_4096_windows", |b| {
        b.iter(|| windows.iter().filter(|w| warm.contains(pack_window(black_box(w)))).count())
    });
}

fn bench_affinity(c: &mut Criterion) {
    let corpus = initial_corpus(Dialect::Postgres);
    c.bench_function("feedback/affinity_analyze_seed_corpus", |b| {
        b.iter(|| {
            let mut map = AffinityMap::new();
            let mut found = 0usize;
            for case in &corpus {
                found += map.analyze(black_box(case)).len();
            }
            found
        })
    });
    c.bench_function("feedback/corpus_affinities_seed_corpus", |b| {
        b.iter(|| corpus_affinities(black_box(&corpus)).len())
    });
}

fn bench_classify(c: &mut Criterion) {
    let sparse_run = run_of(300, 2654435761);
    let dense_run = run_of(20_000, 0x9e3779b97f4a7c15);
    let mut warm = GlobalCoverage::new();
    warm.merge(&sparse_run);
    c.bench_function("feedback/merge_sparse_300_edges_warm", |b| {
        // The steady-state path: the run is already covered, merge must
        // answer "nothing new" as fast as possible.
        b.iter(|| {
            let mut g = warm.clone();
            g.merge_sparse(black_box(&sparse_run))
        })
    });
    let mut warm_dense = GlobalCoverage::new();
    warm_dense.merge(&dense_run);
    c.bench_function("feedback/merge_words_dense_warm", |b| {
        b.iter(|| {
            let mut g = warm_dense.clone();
            g.merge_words(black_box(&dense_run))
        })
    });
    let shard = warm_dense.clone();
    c.bench_function("feedback/union_with_dense_shard", |b| {
        b.iter(|| {
            let mut g = GlobalCoverage::new();
            g.union_with(black_box(&shard));
            g.edges_covered()
        })
    });
}

fn bench_sink(c: &mut Criterion) {
    let run = run_of(600, 2654435761);
    c.bench_function("feedback/sink_publish_no_novelty", |b| {
        // The lock-free fast path a worker hits every epoch without new
        // coverage: a 128-word dirty-bitmap scan, zero atomic writes.
        let sink = CoverageSink::new();
        let mut shard = GlobalCoverage::new();
        shard.merge(&run);
        sink.publish_dirty(&mut shard);
        b.iter(|| black_box(sink.publish_dirty(&mut shard)))
    });
    c.bench_function("feedback/sink_publish_fresh_shard", |b| {
        let sink = CoverageSink::new();
        b.iter(|| {
            let mut shard = GlobalCoverage::new();
            shard.merge(black_box(&run));
            sink.publish_dirty(&mut shard)
        })
    });
}

fn bench_engine_feedback(c: &mut Criterion) {
    c.bench_function("feedback/lego_feedback_accepted_case", |b| {
        // Full per-case feedback cost on corpus admission: n-gram recording,
        // affinity analysis, synthesis triggers, pool insert (Arc bump).
        let mut fz = LegoFuzzer::new(Dialect::Postgres, Config::default());
        let mut db = lego_dbms::Dbms::new(Dialect::Postgres);
        let case = fz.next_case();
        db.reset();
        let report = db.execute_case(&case);
        b.iter(|| fz.feedback(black_box(&case), &report, true))
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .configure_from_args()
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_ngram, bench_affinity, bench_classify, bench_sink, bench_engine_feedback
}
criterion_main!(benches);
