-- COMDB2-INT-099 | Comdb2 | Sqlite | UB
PUT counter0 ON;
SELECT MAX(a), 1 AS a7 FROM t0 WHERE (a || (TRUE > 'x')) LIMIT 1;
CREATE INDEX i1 ON t0 (a);
EXPLAIN SELECT b AS a7 FROM t0 WHERE (b LIKE 'x');
