-- COMDB2-INT-097 | Comdb2 | Sqlite | UB
ALTER TABLE t0 RENAME COLUMN b TO c19;
COMMIT;
SET @@SESSION.sql_mode = strict;
