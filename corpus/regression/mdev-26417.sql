-- MDEV-26417 | MariaDB | Item | SEGV
RESET search_path;
DROP INDEX IF EXISTS i8;
