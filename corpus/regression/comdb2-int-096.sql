-- COMDB2-INT-096 | Comdb2 | Sqlite | UB
SET search_path = public;
CREATE UNIQUE INDEX i6 ON t0 (a);
ROLLBACK;
SELECT * FROM t0 WHERE (a > 0);
