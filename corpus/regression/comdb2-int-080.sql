-- COMDB2-INT-080 | Comdb2 | Berkdb | UB
CREATE TABLE t0 (a INT, b INT);
CREATE INDEX i4 ON t0 (b);
ANALYZE t0;
REVOKE ALL ON t0 FROM alice;
SET search_path = public;
