#!/usr/bin/env bash
# Bench gate: re-run the end-to-end campaign throughput bench and fail on a
# feedback-stage-share or throughput regression against the checked-in
# baseline report (BENCH_throughput.json at the repo root).
#
# What is gated, and why these thresholds:
#   * serial feedback share — the absolute acceptance bar is 30% of wall
#     time; the gate also allows baseline+5pp so a noisy runner never fails
#     a baseline that is already well under the bar.
#   * parallel feedback share — baseline+7pp (worker contention makes this
#     number noisier than the serial one).
#   * serial execs/s — at least 0.6x the baseline. Stage *shares* transfer
#     across machines; absolute execs/s do not, so this floor only catches
#     order-of-magnitude regressions (the bug class that motivated the
#     gate was a 4x slowdown, comfortably caught at 0.6x).
#   * parallel speedup >= 2.0x at 3 workers — only enforced when the runner
#     actually has >= 4 cores (3 workers + coordinator). On fewer cores the
#     workers time-slice one another and the physical ceiling is ~1.0x, so
#     the gate records the core count and skips instead of lying.
#
# Usage: scripts/check_bench_gate.sh [path-to-bench_throughput]
#        (default: target/release/bench_throughput — build with
#         cargo build --release -p lego-bench --bin bench_throughput)
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
bench="${1:-$root/target/release/bench_throughput}"
baseline="$root/BENCH_throughput.json"
units="${BENCH_GATE_UNITS:-200000}"

command -v jq >/dev/null || { echo "check_bench_gate: jq not found" >&2; exit 1; }
[[ -x "$bench" ]] || {
  echo "check_bench_gate: $bench not found; build with: cargo build --release -p lego-bench --bin bench_throughput" >&2
  exit 1
}
[[ -f "$baseline" ]] || { echo "check_bench_gate: no baseline at $baseline" >&2; exit 1; }

cores=$(nproc)
work=$(mktemp -d)
# The bench binary writes its report over the baseline path, so stash the
# checked-in baseline first and always restore it.
cp "$baseline" "$work/baseline.json"
restore() { cp "$work/baseline.json" "$baseline"; rm -rf "$work"; }
trap restore EXIT

echo "check_bench_gate: $cores core(s), $units units"
"$bench" "$units" --workers 3
cp "$baseline" "$work/fresh.json"

jqv() { jq -r "$2" "$work/$1.json"; }
share() { # <file> <run> -> feedback share_pct
  jqv "$1" ".$2.stage_profile.stages[] | select(.stage == \"feedback\") | .share_pct"
}

base_serial_share=$(share baseline serial)
base_parallel_share=$(share baseline parallel)
base_serial_eps=$(jqv baseline .serial.execs_per_sec)
fresh_serial_share=$(share fresh serial)
fresh_parallel_share=$(share fresh parallel)
fresh_serial_eps=$(jqv fresh .serial.execs_per_sec)
fresh_speedup=$(jqv fresh .speedup)

fail=0
check() { # <label> <ok:0/1> <detail>
  if [[ "$2" == "1" ]]; then echo "  PASS  $1 ($3)"; else echo "  FAIL  $1 ($3)"; fail=1; fi
}

serial_ceil=$(jq -n "[30, $base_serial_share + 5] | max")
ok=$(jq -n "($fresh_serial_share <= $serial_ceil) | if . then 1 else 0 end")
check "serial feedback share" "$ok" \
  "$(printf '%.1f%% vs ceiling %.1f%%' "$fresh_serial_share" "$serial_ceil")"

parallel_ceil=$(jq -n "[35, $base_parallel_share + 7] | max")
ok=$(jq -n "($fresh_parallel_share <= $parallel_ceil) | if . then 1 else 0 end")
check "parallel feedback share" "$ok" \
  "$(printf '%.1f%% vs ceiling %.1f%%' "$fresh_parallel_share" "$parallel_ceil")"

eps_floor=$(jq -n "$base_serial_eps * 0.6")
ok=$(jq -n "($fresh_serial_eps >= $eps_floor) | if . then 1 else 0 end")
check "serial execs/s" "$ok" \
  "$(printf '%.0f vs floor %.0f (baseline %.0f)' "$fresh_serial_eps" "$eps_floor" "$base_serial_eps")"

if (( cores >= 4 )); then
  ok=$(jq -n "($fresh_speedup >= 2.0) | if . then 1 else 0 end")
  check "3-worker speedup" "$ok" "$(printf '%.2fx vs floor 2.00x' "$fresh_speedup")"
else
  echo "  SKIP  3-worker speedup ($cores core(s) < 4: physical ceiling ~1.0x," \
       "measured $(printf '%.2fx' "$fresh_speedup"))"
fi

if [[ -n "${GITHUB_STEP_SUMMARY:-}" ]]; then
  {
    echo "### Bench gate ($cores cores, $units units)"
    echo ""
    echo "| Metric | Baseline | Fresh |"
    echo "| --- | --- | --- |"
    printf '| serial feedback share | %.1f%% | %.1f%% |\n' "$base_serial_share" "$fresh_serial_share"
    printf '| parallel feedback share | %.1f%% | %.1f%% |\n' "$base_parallel_share" "$fresh_parallel_share"
    printf '| serial execs/s | %.0f | %.0f |\n' "$base_serial_eps" "$fresh_serial_eps"
    printf '| 3-worker speedup | — | %.2fx |\n' "$fresh_speedup"
  } >> "$GITHUB_STEP_SUMMARY"
fi

exit "$fail"
