#!/usr/bin/env bash
# Resilience smoke: drive a real checkpointed campaign through lego_cli,
# simulate a crash by deleting every checkpoint after the first, resume, and
# require the resumed outcome to be byte-identical to the uninterrupted run
# (timing fields stripped, mirroring CampaignStats::deterministic_json).
# Also validates that CheckpointWritten telemetry was emitted.
#
# Usage: scripts/check_resilience.sh [path-to-lego_cli]
#        (default: target/release/lego_cli — build with
#         cargo build --release -p lego-bench --bin lego_cli)
set -euo pipefail

cli="${1:-target/release/lego_cli}"
command -v jq >/dev/null || { echo "check_resilience: jq not found" >&2; exit 1; }
[[ -x "$cli" ]] || {
  echo "check_resilience: $cli not found; build with: cargo build --release -p lego-bench --bin lego_cli" >&2
  exit 1
}

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

units=24000
seed=42
every=6000

# 1. Uninterrupted reference run, checkpointing every $every units.
"$cli" fuzz pg --units "$units" --seed "$seed" \
  --checkpoint "$work/ckpt" --checkpoint-every "$every" \
  --out "$work/full" --telemetry "$work/full.jsonl" >/dev/null

[[ -f "$work/ckpt/meta.json" ]] || { echo "check_resilience: no checkpoint meta written" >&2; exit 1; }
wrote=$(jq -s 'map(select(.type == "CheckpointWritten")) | length' "$work/full.jsonl")
[[ "$wrote" -ge 2 ]] || {
  echo "check_resilience: expected >=2 CheckpointWritten events, saw $wrote" >&2; exit 1; }
"$(dirname "$0")/check_telemetry.sh" "$work/full.jsonl"

# 2. Simulate a crash right after the first checkpoint: every later
#    checkpoint file vanishes, as if the process died before writing them.
find "$work/ckpt" -name 'worker*_ckpt*.json' ! -name '*_ckpt0001.json' -delete

# 3. Resume. Same seed and budget (the checkpoint loader enforces both); the
#    deterministic outcome must match the uninterrupted run byte-for-byte.
"$cli" fuzz pg --units "$units" --seed "$seed" --resume "$work/ckpt" \
  --out "$work/resumed" >/dev/null

strip='del(.wall_ms, .execs_per_sec, .stage_profile)'
full=$(jq -S "$strip" "$work/full/campaign.json")
resumed=$(jq -S "$strip" "$work/resumed/campaign.json")
if [[ "$full" != "$resumed" ]]; then
  echo "check_resilience: resumed campaign diverged from the uninterrupted run" >&2
  diff <(echo "$full") <(echo "$resumed") >&2 || true
  exit 1
fi

execs=$(jq -r '.execs' "$work/full/campaign.json")
echo "check_resilience: OK (resume byte-identical across $execs cases, $wrote checkpoints)"
