#!/usr/bin/env bash
# Grep lint for nondeterminism leaks in the deterministic hot paths.
#
# The campaign's replay/resume contract (byte-identical reruns, checkpoint
# parity, --sema/--rule-cov off-path parity) only holds if the exploration
# code never consults an ambient source of nondeterminism. This lint rejects
# the classic leaks in the files that make exploration decisions:
#
#   1. Ambient entropy / wall clocks used as data: SystemTime, thread_rng,
#      from_entropy, rand::random, RandomState, DefaultHasher. Forbidden
#      outright — seeds come from the CLI, hashes from the FNV helpers.
#   2. Instant::now(): allowed only for throughput reporting, and every use
#      must carry a `wall-clock` comment on the same line or within the
#      three preceding lines explaining that the value never feeds an
#      exploration decision (deterministic_json() strips the derived
#      fields).
#   3. Hash-order leaks: iterating a HashMap/HashSet observes the random
#      SipHash bucket order. Any .iter()/.keys()/.values()/.drain()/
#      into_iter()/`for _ in &m` over a binding declared as a hash
#      collection must either sort within the next two lines (the
#      sorted_pairs pattern) or be an order-insensitive rebuild
#      (`.copied().collect()` into another hash collection, i.e. the
#      checkpoint-restore pattern).
#
# Usage: scripts/check_determinism_lint.sh   (run from the repo root)
set -euo pipefail

cd "$(dirname "$0")/.."

# The deterministic set: everything that decides WHAT the fuzzer does next.
# Telemetry, metrics and the observe crate are intentionally excluded —
# they are allowed to look at the clock because nothing replayable reads
# them back.
files=(
  crates/core/src/fuzzer.rs
  crates/core/src/campaign.rs
  crates/core/src/mutation.rs
  crates/core/src/synthesis.rs
  crates/core/src/checkpoint.rs
)
while IFS= read -r f; do files+=("$f"); done \
  < <(find crates/coverage/src crates/sqlsema/src -name '*.rs' | sort)

fail=0

# --- Rule 1: ambient entropy and wall clocks as data -----------------------
if hits=$(grep -nE 'SystemTime|thread_rng|from_entropy|rand::random|RandomState|DefaultHasher' \
    "${files[@]}"); then
  echo "determinism-lint: ambient entropy / wall-clock-as-data in deterministic paths:" >&2
  echo "$hits" >&2
  fail=1
fi

# --- Rule 2: Instant::now() must be annotated wall-clock-only --------------
# awk keeps a 3-line comment window; an unannotated Instant::now() is a leak
# waiting to be compared, persisted, or branched on.
for f in "${files[@]}"; do
  bad=$(awk '
    /wall-clock/ { mark = NR }
    /Instant::now/ {
      if (mark == 0 || NR - mark > 3) print FILENAME ":" NR ": " $0
    }
  ' "$f")
  if [[ -n "$bad" ]]; then
    echo "determinism-lint: Instant::now() without a wall-clock annotation:" >&2
    echo "$bad" >&2
    fail=1
  fi
done

# --- Rule 3: hash-collection iteration must be ordered or order-free -------
for f in "${files[@]}"; do
  # Pass 1: names declared as HashMap/HashSet in this file (fields, lets,
  # and reference parameters alike).
  names=$(grep -oE '[A-Za-z_][A-Za-z0-9_]*[[:space:]]*(:[[:space:]]*&?(std::collections::)?Hash(Map|Set)[<,)]|=[[:space:]]*Hash(Map|Set)::)' "$f" \
    | grep -oE '^[A-Za-z_][A-Za-z0-9_]*' | sort -u || true)
  [[ -n "$names" ]] || continue
  # Pass 2: iteration over those names. Allowed escapes:
  #   - `sort` on the same line or within the next two (sorted_pairs);
  #   - `.copied().collect()` rebuilds (slice -> hash or hash -> hash are
  #     order-insensitive: the destination imposes no order).
  for name in $names; do
    bad=$(awk -v name="$name" '
      {
        line[NR] = $0
        pat = "(^|[^A-Za-z0-9_.])" name "\\.(iter|keys|values|drain|into_iter)\\(" \
              "|for[[:space:]].*[[:space:]]in[[:space:]]+&" name "([^A-Za-z0-9_]|$)"
        if ($0 ~ pat) flagged[NR] = 1
      }
      END {
        for (n in flagged) {
          window = line[n] " " line[n + 1] " " line[n + 2]
          if (window ~ /sort/) continue
          if (line[n] ~ /\.copied\(\)\.collect\(\)/) continue
          print FILENAME ":" n ": " line[n]
        }
      }
    ' "$f")
    if [[ -n "$bad" ]]; then
      echo "determinism-lint: unordered hash iteration (receiver \`$name\`):" >&2
      echo "$bad" >&2
      fail=1
    fi
  done
done

if [[ "$fail" -ne 0 ]]; then
  echo "determinism-lint: FAILED" >&2
  exit 1
fi
echo "determinism-lint: OK (${#files[@]} files clean)"
