#!/usr/bin/env bash
# Rule-coverage smoke: drive real --rule-cov campaigns through lego_cli and
# require the grammar-rule feedback dimension to (1) actually cover rules,
# (2) stay deterministic across reruns, and (3) cost nothing when off —
# an off-flag campaign must be byte-identical to a rerun of itself, report
# zero rule branches, and emit no RuleCoverageGain telemetry.
#
# Usage: scripts/check_rule_cov.sh [path-to-lego_cli]
#        (default: target/release/lego_cli — build with
#         cargo build --release -p lego-bench --bin lego_cli)
set -euo pipefail

cli="${1:-target/release/lego_cli}"
command -v jq >/dev/null || { echo "check_rule_cov: jq not found" >&2; exit 1; }
[[ -x "$cli" ]] || {
  echo "check_rule_cov: $cli not found; build with: cargo build --release -p lego-bench --bin lego_cli" >&2
  exit 1
}

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

units=24000
seed=42
strip='del(.wall_ms, .execs_per_sec, .stage_profile)'

# 1. Rule-cov campaign: the stdout line and campaign.json must agree on a
#    nonzero rule-edge count, and RuleCoverageGain telemetry must flow.
"$cli" fuzz pg --units "$units" --seed "$seed" --rule-cov \
  --out "$work/on" --telemetry "$work/on.jsonl" | tee "$work/on.log" >/dev/null
edges=$(grep '^rule branches:' "$work/on.log" | awk '{print $3}')
[[ -n "$edges" && "$edges" -gt 0 ]] || {
  echo "check_rule_cov: expected a nonzero 'rule branches:' line, got '${edges:-none}'" >&2; exit 1; }
json_edges=$(jq -r '.rule_branches' "$work/on/campaign.json")
[[ "$json_edges" == "$edges" ]] || {
  echo "check_rule_cov: campaign.json rule_branches ($json_edges) != stdout ($edges)" >&2; exit 1; }
gains=$(jq -s 'map(select(.type == "RuleCoverageGain")) | length' "$work/on.jsonl")
[[ "$gains" -ge 1 ]] || {
  echo "check_rule_cov: no RuleCoverageGain events in the on-flag run" >&2; exit 1; }
"$(dirname "$0")/check_telemetry.sh" "$work/on.jsonl"

# 2. Determinism: a rerun with the same seed is byte-identical (timing
#    fields stripped, mirroring CampaignStats::deterministic_json).
"$cli" fuzz pg --units "$units" --seed "$seed" --rule-cov \
  --out "$work/on2" >/dev/null
a=$(jq -S "$strip" "$work/on/campaign.json")
b=$(jq -S "$strip" "$work/on2/campaign.json")
if [[ "$a" != "$b" ]]; then
  echo "check_rule_cov: --rule-cov rerun diverged" >&2
  diff <(echo "$a") <(echo "$b") >&2 || true
  exit 1
fi

# 3. Off is free: no rule-branches line, zero rule_branches in the report,
#    no RuleCoverageGain telemetry, and the off-flag path stays
#    deterministic too.
"$cli" fuzz pg --units "$units" --seed "$seed" \
  --out "$work/off" --telemetry "$work/off.jsonl" | tee "$work/off.log" >/dev/null
if grep -q '^rule branches:' "$work/off.log"; then
  echo "check_rule_cov: off-flag run printed a rule-branches line" >&2; exit 1
fi
off_edges=$(jq -r '.rule_branches' "$work/off/campaign.json")
[[ "$off_edges" == "0" ]] || {
  echo "check_rule_cov: off-flag run reported rule_branches=$off_edges" >&2; exit 1; }
off_gains=$(jq -s 'map(select(.type == "RuleCoverageGain")) | length' "$work/off.jsonl")
[[ "$off_gains" == "0" ]] || {
  echo "check_rule_cov: off-flag run emitted $off_gains RuleCoverageGain events" >&2; exit 1; }
"$cli" fuzz pg --units "$units" --seed "$seed" --out "$work/off2" >/dev/null
c=$(jq -S "$strip" "$work/off/campaign.json")
d=$(jq -S "$strip" "$work/off2/campaign.json")
if [[ "$c" != "$d" ]]; then
  echo "check_rule_cov: off-flag rerun diverged" >&2
  diff <(echo "$c") <(echo "$d") >&2 || true
  exit 1
fi

execs=$(jq -r '.execs' "$work/on/campaign.json")
echo "check_rule_cov: OK ($edges rule edges, $gains gain events, $execs cases, reruns byte-identical)"
