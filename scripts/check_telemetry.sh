#!/usr/bin/env bash
# Validate a lego-observe JSONL event log: every line is a JSON object with a
# known event type and the per-type invariants hold. Also sanity-checks the
# metrics exports written next to the log, when present.
#
# Usage: scripts/check_telemetry.sh <events.jsonl>
set -euo pipefail

log="${1:?usage: check_telemetry.sh <events.jsonl>}"
command -v jq >/dev/null || { echo "check_telemetry: jq not found" >&2; exit 1; }
[[ -s "$log" ]] || { echo "check_telemetry: $log is missing or empty" >&2; exit 1; }

# 1. Every line parses as a JSON object with a recognised type.
jq -e -s '
  (length > 0) and
  (map(type == "object" and (.type | type == "string")) | all) and
  (map(.type) - ["ExecStart","ExecEnd","MutationApplied","AffinityDiscovered",
                 "SynthesisStep","CoverageGain","RuleCoverageGain","BugFound","LogicBugFound",
                 "WorkerSync","CaseAborted","WorkerDied","CheckpointWritten",
                 "DurabilityBugFound","SemaVerdict","SemaDivergenceFound"] == [])
' "$log" >/dev/null || { echo "check_telemetry: malformed or unknown events in $log" >&2; exit 1; }

# 2. Per-type invariants: paired exec markers, statement counters that add
#    up, attributed coverage gains, and worker indexes present where due.
jq -e -s '
  (map(select(.type == "ExecStart")) | length) as $starts |
  (map(select(.type == "ExecEnd"))) as $ends |
  ($starts > 0) and ($starts == ($ends | length)) and
  ($ends | map(.ok + .err == .statements) | all) and
  ($ends | map(.worker >= 0 and .exec >= 0) | all) and
  (map(select(.type == "CoverageGain")) | map(.edges >= 0 and (.op | type == "string")) | all) and
  (map(select(.type == "RuleCoverageGain")) | map(.edges >= 1 and .worker >= 0 and .exec >= 0) | all) and
  (map(select(.type == "BugFound")) | map((.identifier | length) > 0) | all) and
  (map(select(.type == "LogicBugFound")) | map((.oracle | length) > 0) | all) and
  (map(select(.type == "DurabilityBugFound")) | map(.worker >= 0 and ((.fingerprint | tostring | length) > 0)) | all) and
  (map(select(.type == "SemaVerdict")) | map(.worker >= 0 and .rejects >= 1 and .statements >= .rejects) | all) and
  (map(select(.type == "SemaDivergenceFound")) | map(.worker >= 0 and ((.fingerprint | tostring | length) > 0)) | all) and
  (map(select(.type == "CaseAborted")) | map((.reason | length) > 0 and .worker >= 0) | all) and
  (map(select(.type == "WorkerDied")) | map((.error | length) > 0 and .worker >= 0) | all) and
  (map(select(.type == "CheckpointWritten")) | map(.seq >= 1 and (.path | length) > 0) | all)
' "$log" >/dev/null || { echo "check_telemetry: event invariants violated in $log" >&2; exit 1; }

# 3. Metrics exports (written by TelemetryGuard::finish next to the log).
base="${log%.*}"
if [[ -f "$base.metrics.json" ]]; then
  execs=$(jq -e '.counters.lego_execs_total' "$base.metrics.json")
  starts=$(jq -s 'map(select(.type == "ExecStart")) | length' "$log")
  [[ "$execs" == "$starts" ]] || {
    echo "check_telemetry: metrics execs ($execs) != ExecStart events ($starts)" >&2; exit 1; }
  # The statement-count histogram is fed from ExecEnd events, so its sample
  # count must equal the exec count; buckets are cumulative (last == count)
  # and non-decreasing.
  jq -e --argjson execs "$execs" '
    .histograms.lego_case_stmts as $h |
    ($h.count == $execs) and ($h.buckets | last == $execs) and
    ([range(1; $h.buckets | length) | $h.buckets[.] >= $h.buckets[. - 1]] | all) and
    ($h.sum >= $h.count)
  ' "$base.metrics.json" >/dev/null || {
    echo "check_telemetry: lego_case_stmts histogram inconsistent in $base.metrics.json" >&2; exit 1; }
fi
if [[ -f "$base.prom" ]]; then
  grep -q '^lego_execs_total ' "$base.prom" || {
    echo "check_telemetry: $base.prom lacks lego_execs_total" >&2; exit 1; }
  grep -q '^# TYPE lego_case_stmts histogram' "$base.prom" || {
    echo "check_telemetry: $base.prom lacks the statement-count histogram" >&2; exit 1; }
  grep -q '^lego_case_stmts_bucket{le="+Inf"} ' "$base.prom" || {
    echo "check_telemetry: $base.prom histogram lacks the +Inf bucket" >&2; exit 1; }
fi

lines=$(wc -l < "$log")
echo "check_telemetry: OK ($lines events in $log)"
