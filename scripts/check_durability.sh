#!/usr/bin/env bash
# Durability smoke: drive real recovery-oracle campaigns through lego_cli.
#
# 1. Fault-free run with `--oracles=recovery --wal-dir`: the WAL file must be
#    created and well-formed (magic + records), oracle checks must run, and
#    zero durability bugs may be reported (oracle soundness on the clean
#    engine). Run twice; the deterministic report fields must be
#    byte-identical.
# 2. Faulted run (LEGO_PLANT_FAULT=wal-drop-last plants the torn-write
#    fault): the lost committed write must be detected, deduplicated to
#    exactly one finding, its ddmin-reduced artifact written under
#    results/bugs/, and the lego_durability_bugs_total metric exported.
#
# Usage: scripts/check_durability.sh [path-to-lego_cli]
#        (default: target/release/lego_cli — build with
#         cargo build --release -p lego-bench --bin lego_cli)
set -euo pipefail

cli="${1:-target/release/lego_cli}"
command -v jq >/dev/null || { echo "check_durability: jq not found" >&2; exit 1; }
[[ -x "$cli" ]] || {
  echo "check_durability: $cli not found; build with: cargo build --release -p lego-bench --bin lego_cli" >&2
  exit 1
}

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

units=30000
seed=42
strip='del(.wall_ms, .execs_per_sec, .stage_profile)'

# 1. Fault-free recovery campaign: WAL created, checks run, zero findings.
run_clean() {
  "$cli" fuzz pg --units "$units" --seed "$seed" \
    --oracles=recovery --wal-dir "$work/wal$1" --out "$work/clean$1" \
    | tee "$work/clean$1.log" >/dev/null
}
run_clean 1

wal="$work/wal1/worker00.wal"
[[ -f "$wal" ]] || { echo "check_durability: no WAL file at $wal" >&2; exit 1; }
magic=$(head -c 8 "$wal")
[[ "$magic" == "LEGOWAL1" ]] || {
  echo "check_durability: $wal lacks the LEGOWAL1 magic (got '$magic')" >&2; exit 1; }
size=$(wc -c < "$wal")
[[ "$size" -gt 8 ]] || {
  echo "check_durability: $wal holds no records ($size bytes) — nothing was replayed" >&2; exit 1; }

checks=$(jq -r '.oracle_checks' "$work/clean1/campaign.json")
dbugs=$(jq -r '.durability_bugs' "$work/clean1/campaign.json")
[[ "$checks" -gt 0 ]] || { echo "check_durability: no recovery checks ran" >&2; exit 1; }
[[ "$dbugs" -eq 0 ]] || {
  echo "check_durability: clean engine reported $dbugs durability bugs" >&2; exit 1; }
grep -q '^durability bugs: 0$' "$work/clean1.log" || {
  echo "check_durability: CLI did not report the durability-bug count" >&2; exit 1; }

# Same campaign again (different WAL dir — the path must not matter): the
# deterministic report fields must be byte-identical.
run_clean 2
a=$(jq -S "$strip" "$work/clean1/campaign.json")
b=$(jq -S "$strip" "$work/clean2/campaign.json")
if [[ "$a" != "$b" ]]; then
  echo "check_durability: recovery campaign is nondeterministic" >&2
  diff <(echo "$a") <(echo "$b") >&2 || true
  exit 1
fi

# 2. Faulted campaign: the planted lost write is detected end to end.
LEGO_PLANT_FAULT=wal-drop-last "$cli" fuzz pg --units "$units" --seed "$seed" \
  --oracles=recovery --wal-dir "$work/wal-fault" --out "$work/fault" \
  --telemetry "$work/fault.jsonl" | tee "$work/fault.log" >/dev/null

dbugs=$(jq -r '.durability_bugs' "$work/fault/campaign.json")
[[ "$dbugs" -eq 1 ]] || {
  echo "check_durability: expected exactly 1 deduplicated durability bug, got $dbugs" >&2; exit 1; }
grep -q '^durability bugs: 1$' "$work/fault.log" || {
  echo "check_durability: CLI did not report the injected durability bug" >&2; exit 1; }

# The finding carries the recovery oracle's identity and a reduced
# reproducer both in the report and as an artifact.
jq -e '.logic_bugs | length == 1' "$work/fault/campaign.json" >/dev/null || {
  echo "check_durability: finding missing from campaign.json" >&2; exit 1; }
ls "$work"/fault/logic_recovery_*.sql >/dev/null 2>&1 || {
  echo "check_durability: no reduced reproducer written to --out" >&2; exit 1; }
repo_root=$(cd "$(dirname "$0")/.." && pwd)
ls "$repo_root"/results/bugs/*/logic-*.sql >/dev/null 2>&1 || {
  echo "check_durability: no logic-bug artifact under results/bugs/" >&2; exit 1; }

# Telemetry: the event log is well-formed, carries the DurabilityBugFound
# event, and the metrics export counts it.
"$(dirname "$0")/check_telemetry.sh" "$work/fault.jsonl"
found=$(jq -s 'map(select(.type == "DurabilityBugFound")) | length' "$work/fault.jsonl")
[[ "$found" -eq 1 ]] || {
  echo "check_durability: expected 1 DurabilityBugFound event, saw $found" >&2; exit 1; }
total=$(jq -r '.counters.lego_durability_bugs_total' "$work/fault.metrics.json")
[[ "$total" == "1" ]] || {
  echo "check_durability: lego_durability_bugs_total = $total, want 1" >&2; exit 1; }
grep -q '^lego_durability_bugs_total 1$' "$work/fault.prom" || {
  echo "check_durability: prometheus export lacks lego_durability_bugs_total" >&2; exit 1; }

echo "check_durability: OK ($checks recovery checks clean, planted fault detected, reduced, exported)"
