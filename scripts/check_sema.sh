#!/usr/bin/env bash
# Static-analyzer smoke: drive real --sema campaigns through lego_cli and
# require the pre-execution validity dimension to (1) actually reject and
# skip statically-invalid cases, (2) stay deterministic across reruns,
# (3) cost nothing when off — an off-flag campaign must be byte-identical
# to a rerun of itself, report zero sema counters, and emit no SemaVerdict
# telemetry — and (4) surface the planted analyzer fault
# (LEGO_PLANT_FAULT=sema-overaccept) as deduplicated, delta-debugged
# SemaDivergence findings with on-disk reproducers.
#
# Usage: scripts/check_sema.sh [path-to-lego_cli]
#        (default: target/release/lego_cli — build with
#         cargo build --release -p lego-bench --bin lego_cli)
set -euo pipefail

cli="${1:-target/release/lego_cli}"
command -v jq >/dev/null || { echo "check_sema: jq not found" >&2; exit 1; }
[[ -x "$cli" ]] || {
  echo "check_sema: $cli not found; build with: cargo build --release -p lego-bench --bin lego_cli" >&2
  exit 1
}

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

units=24000
seed=42
strip='del(.wall_ms, .execs_per_sec, .stage_profile)'

# 1. Sema campaign: the stdout lines and campaign.json must agree on nonzero
#    static rejects and skipped statements, and SemaVerdict telemetry must
#    flow. The mutation stages (deletion mutants, splices) are exactly what
#    produces statically-dead sequences, so a stock campaign suffices as the
#    mutation-heavy workload.
"$cli" fuzz pg --units "$units" --seed "$seed" --sema \
  --out "$work/on" --telemetry "$work/on.jsonl" | tee "$work/on.log" >/dev/null
rejects=$(grep '^sema rejects:' "$work/on.log" | awk '{print $3}')
[[ -n "$rejects" && "$rejects" -gt 0 ]] || {
  echo "check_sema: expected a nonzero 'sema rejects:' line, got '${rejects:-none}'" >&2; exit 1; }
json_rejects=$(jq -r '.sema_rejects' "$work/on/campaign.json")
[[ "$json_rejects" == "$rejects" ]] || {
  echo "check_sema: campaign.json sema_rejects ($json_rejects) != stdout ($rejects)" >&2; exit 1; }
skipped=$(jq -r '.sema_skipped_stmts' "$work/on/campaign.json")
[[ "$skipped" -gt 0 ]] || {
  echo "check_sema: rejected cases but sema_skipped_stmts=$skipped" >&2; exit 1; }
verdicts=$(jq -s 'map(select(.type == "SemaVerdict")) | length' "$work/on.jsonl")
[[ "$verdicts" -ge 1 ]] || {
  echo "check_sema: no SemaVerdict events in the on-flag run" >&2; exit 1; }
"$(dirname "$0")/check_telemetry.sh" "$work/on.jsonl"

# A healthy analyzer must not disagree with our own engine.
divergences=$(jq -r '.sema_divergences' "$work/on/campaign.json")
[[ "$divergences" == "0" ]] || {
  echo "check_sema: healthy run reported $divergences analyzer-vs-engine divergences" >&2; exit 1; }

# 2. Determinism: a rerun with the same seed is byte-identical (timing
#    fields stripped, mirroring CampaignStats::deterministic_json).
"$cli" fuzz pg --units "$units" --seed "$seed" --sema \
  --out "$work/on2" >/dev/null
a=$(jq -S "$strip" "$work/on/campaign.json")
b=$(jq -S "$strip" "$work/on2/campaign.json")
if [[ "$a" != "$b" ]]; then
  echo "check_sema: --sema rerun diverged" >&2
  diff <(echo "$a") <(echo "$b") >&2 || true
  exit 1
fi

# 3. Off is free: no sema lines, zero sema counters in the report, no
#    SemaVerdict telemetry, and the off-flag path stays deterministic too.
"$cli" fuzz pg --units "$units" --seed "$seed" \
  --out "$work/off" --telemetry "$work/off.jsonl" | tee "$work/off.log" >/dev/null
if grep -q '^sema rejects:' "$work/off.log"; then
  echo "check_sema: off-flag run printed a sema-rejects line" >&2; exit 1
fi
off_rejects=$(jq -r '.sema_rejects' "$work/off/campaign.json")
[[ "$off_rejects" == "0" ]] || {
  echo "check_sema: off-flag run reported sema_rejects=$off_rejects" >&2; exit 1; }
off_verdicts=$(jq -s 'map(select(.type == "SemaVerdict")) | length' "$work/off.jsonl")
[[ "$off_verdicts" == "0" ]] || {
  echo "check_sema: off-flag run emitted $off_verdicts SemaVerdict events" >&2; exit 1; }
"$cli" fuzz pg --units "$units" --seed "$seed" --out "$work/off2" >/dev/null
c=$(jq -S "$strip" "$work/off/campaign.json")
d=$(jq -S "$strip" "$work/off2/campaign.json")
if [[ "$c" != "$d" ]]; then
  echo "check_sema: off-flag rerun diverged" >&2
  diff <(echo "$c") <(echo "$d") >&2 || true
  exit 1
fi

# Skipping statically-dead cases must not make each *executed* case slower:
# compare per-exec wall time informationally (no hard gate — CI timing is
# noisy; the numbers land in the log for trend review).
on_rate=$(jq -r '.execs_per_sec' "$work/on/campaign.json")
off_rate=$(jq -r '.execs_per_sec' "$work/off/campaign.json")
echo "check_sema: throughput on=$on_rate execs/s off=$off_rate execs/s"

# 4. Planted analyzer fault: the conformance oracle must catch the binder
#    over-accepting COMMIT outside a transaction, dedup the findings by
#    fingerprint, and write delta-debugged reproducers.
LEGO_PLANT_FAULT=sema-overaccept "$cli" fuzz pg --units "$units" --seed "$seed" --sema \
  --out "$work/fault" --telemetry "$work/fault.jsonl" | tee "$work/fault.log" >/dev/null
fault_div=$(jq -r '.sema_divergences' "$work/fault/campaign.json")
[[ "$fault_div" -ge 1 ]] || {
  echo "check_sema: planted fault produced no divergence finding" >&2; exit 1; }
found=$(jq -s 'map(select(.type == "SemaDivergenceFound")) | length' "$work/fault.jsonl")
[[ "$found" == "$fault_div" ]] || {
  echo "check_sema: $fault_div findings but $found SemaDivergenceFound events (dedup broken?)" >&2
  exit 1; }
repro_count=$(find "$work/fault" -name 'logic_sema_*.sql' | wc -l)
[[ "$repro_count" == "$fault_div" ]] || {
  echo "check_sema: $fault_div findings but $repro_count reproducer files" >&2; exit 1; }
for repro in "$work/fault"/logic_sema_*.sql; do
  grep -Eq 'COMMIT|END' "$repro" || {
    echo "check_sema: reproducer $repro lost the divergent statement" >&2; exit 1; }
done

execs=$(jq -r '.execs' "$work/on/campaign.json")
echo "check_sema: OK ($rejects static rejects, $skipped skipped stmts, $execs cases, $fault_div planted divergences, reruns byte-identical)"
