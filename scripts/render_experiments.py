#!/usr/bin/env python3
"""Render the measured-results section of EXPERIMENTS.md from results/*.json.

Usage: python3 scripts/render_experiments.py   (run from the repo root after
`cargo run --release -p lego-bench --bin <every experiment binary>`).
"""
import json
import pathlib
import re

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "results"


def load(name):
    with open(RESULTS / f"{name}.json") as fh:
        return json.load(fh)


def fig9_block():
    cells = load("fig9_coverage")
    dialects = ["PostgreSQL", "MySQL", "MariaDB", "Comdb2"]
    fuzzers = ["LEGO", "SQUIRREL", "SQLancer", "SQLsmith"]
    out = ["### Measured — Figure 9 (branches, 400k units, seed 0x1e60)",
           "",
           "| DBMS | LEGO | SQUIRREL | SQLancer | SQLsmith | LEGO vs best baseline |",
           "|---|---|---|---|---|---|"]
    for d in dialects:
        row = {c["fuzzer"]: c["branches"] for c in cells if c["dialect"] == d}
        best = max(v for k, v in row.items() if k != "LEGO")
        cols = [str(row.get(f, "—")) if f in row else "—" for f in fuzzers]
        pct = (row["LEGO"] - best) / best * 100
        out.append(f"| {d} | {' | '.join(cols)} | {pct:+.0f}% |")
    return "\n".join(out)


def table1_block():
    found = load("table1_bugs")
    per = {}
    for f in found:
        per.setdefault(f["dialect"], []).append(f)
    planted = {"PostgreSQL": 6, "MySQL": 21, "MariaDB": 42, "Comdb2": 33}
    cves = sum(1 for f in found if f["identifier"].startswith("CVE-"))
    out = ["### Measured — Table I (continuous: 3 × 1.5M units per DBMS)",
           "",
           "| DBMS | found / planted |", "|---|---|"]
    for d, n in planted.items():
        out.append(f"| {d} | {len(per.get(d, []))} / {n} |")
    out.append(f"| **total** | **{len(found)} / 102** ({cves} CVE-identified; "
               "all 102 proven reachable by `tests/bug_reachability.rs`) |")
    return "\n".join(out)


def table2_block():
    rows = load("table2_affinities")
    out = ["### Measured — Table II (type-affinities in generated seeds)",
           "",
           "| DBMS | SQLancer | SQUIRREL | LEGO |", "|---|---|---|---|"]
    tot = [0, 0, 0]
    for r in rows:
        out.append(f"| {r['dialect']} | {r['sqlancer']} | {r['squirrel']} | {r['lego']} |")
        tot[0] += r["sqlancer"]
        tot[1] += r["squirrel"]
        tot[2] += r["lego"]
    out.append(f"| **total** | **{tot[0]}** | **{tot[1]}** | **{tot[2]}** |")
    return "\n".join(out)


def table3_block():
    cells = load("table3_bugs")
    dialects = ["PostgreSQL", "MySQL", "MariaDB", "Comdb2"]
    fuzzers = ["SQLancer", "SQLsmith", "SQUIRREL", "LEGO"]
    out = ["### Measured — Table III (bugs in one 400k-unit budget)",
           "",
           "| DBMS | SQLancer | SQLsmith | SQUIRREL | LEGO |",
           "|---|---|---|---|---|"]
    totals = {f: 0 for f in fuzzers}
    for d in dialects:
        row = {c["fuzzer"]: c["bugs"] for c in cells if c["dialect"] == d}
        cols = []
        for f in fuzzers:
            if f in row:
                cols.append(str(row[f]))
                totals[f] += row[f]
            else:
                cols.append("—")
        out.append(f"| {d} | {' | '.join(cols)} |")
    out.append("| **total** | " + " | ".join(f"**{totals[f]}**" for f in fuzzers) + " |")
    return "\n".join(out)


def table4_block():
    rows = load("table4_ablation")
    out = ["### Measured — Table IV (LEGO- vs LEGO, mean of 3 seeds)",
           "",
           "| DBMS | Types | Aff(LEGO-) | Aff(LEGO) | Increment | Br(LEGO-) | Br(LEGO) | Improvement |",
           "|---|---|---|---|---|---|---|---|"]
    for r in rows:
        out.append(
            f"| {r['dialect']} | {r['types']} | {r['affinities_minus']} | {r['affinities_lego']} "
            f"| {r['affinity_increment']:+} | {r['branches_minus']} | {r['branches_lego']} "
            f"| {r['branch_improvement_pct']:+.0f}% |")
    return "\n".join(out)


def len_block():
    rows = load("len_ablation")
    out = ["### Measured — § VI length ablation (MariaDB)",
           "",
           "| LEN | bugs | paper |", "|---|---|---|"]
    paper = {3: 30, 5: 35, 8: 27}
    for r in rows:
        out.append(f"| {r['len']} | {r['bugs']} | {paper.get(r['len'], '—')} |")
    return "\n".join(out)


def sparkline(values):
    """Unicode sparkline of a numeric series (empty-safe)."""
    bars = "▁▂▃▄▅▆▇█"
    hi = max(values) if values else 0
    if hi == 0:
        return ""
    return "".join(bars[min(int(v / hi * (len(bars) - 1)), len(bars) - 1)]
                   for v in values)


def plot_block():
    """Time-series summaries from every results/<run>/plot_data.json written
    by the live monitoring plane (`--serve` / `--plot-data`)."""
    runs = sorted(RESULTS.glob("*/plot_data.json"))
    if not runs:
        return None
    out = ["### Measured — campaign time series (monitoring plane)",
           "",
           "| run | duration | execs | branches | peak execs/s | coverage over time |",
           "|---|---|---|---|---|---|"]
    for path in runs:
        with open(path) as fh:
            data = json.load(fh)
        cols = {name: i for i, name in enumerate(data["columns"])}
        rows = data["rows"]
        if not rows:
            continue
        last = rows[-1]
        branches = [r[cols["branches"]] for r in rows]
        peak = max(r[cols["execs_per_sec"]] for r in rows)
        out.append(
            f"| {path.parent.name} | {last[cols['t_s']]:.1f}s "
            f"| {int(last[cols['execs']])} | {int(last[cols['branches']])} "
            f"| {peak:.0f} | `{sparkline(branches)}` |")
    return "\n".join(out)


def main():
    blocks = [fig9_block(), table1_block(), table2_block(), table3_block(),
              table4_block(), len_block()]
    plots = plot_block()
    if plots:
        blocks.append(plots)
    measured = "\n\n".join(blocks)
    path = ROOT / "EXPERIMENTS.md"
    text = path.read_text()
    marker = "MEASURED-PLACEHOLDER"
    if marker in text:
        text = text.replace(marker, measured)
    else:
        # Re-render: replace everything between the sentinel comments.
        text = re.sub(
            r"<!-- measured-start -->.*<!-- measured-end -->",
            f"<!-- measured-start -->\n{measured}\n<!-- measured-end -->",
            text,
            flags=re.S,
        )
        path.write_text(text)
        print("re-rendered measured section")
        return
    text = text.replace(measured, f"<!-- measured-start -->\n{measured}\n<!-- measured-end -->")
    path.write_text(text)
    print("rendered measured section")


if __name__ == "__main__":
    main()
