#!/usr/bin/env bash
# Monitoring-plane smoke: run a short campaign with the live HTTP server,
# hit every endpoint while it fuzzes, then validate the exported artifacts
# (AFL-style plot data, Perfetto-loadable Chrome trace) and require the
# monitored run's deterministic outcome to be byte-identical to an
# unmonitored reference run — the plane must be a pure read-side observer.
#
# Usage: scripts/check_monitor.sh [path-to-lego_cli]
#        (default: target/release/lego_cli — build with
#         cargo build --release -p lego-bench --bin lego_cli)
set -euo pipefail

cli="${1:-target/release/lego_cli}"
command -v jq >/dev/null || { echo "check_monitor: jq not found" >&2; exit 1; }
command -v curl >/dev/null || { echo "check_monitor: curl not found" >&2; exit 1; }
[[ -x "$cli" ]] || {
  echo "check_monitor: $cli not found; build with: cargo build --release -p lego-bench --bin lego_cli" >&2
  exit 1
}

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

units=60000
seed=42

# 1. Unmonitored reference run.
"$cli" fuzz pg --units "$units" --seed "$seed" --out "$work/off" >/dev/null

# 2. Monitored run: serve on an ephemeral port, record plot data and a
#    trace. The linger keeps the endpoints up after a fast campaign so the
#    curls below cannot race the shutdown.
LEGO_SERVE_LINGER_MS=20000 "$cli" fuzz pg --units "$units" --seed "$seed" \
  --serve 127.0.0.1:0 --trace "$work/trace.json" \
  --plot-data "$work/plot_data.csv" --plot-every 50 \
  --out "$work/on" > "$work/run.log" 2>&1 &
pid=$!

addr=""
for _ in $(seq 1 100); do
  addr=$(grep -o 'http://[0-9.:]*' "$work/run.log" | head -1) && [[ -n "$addr" ]] && break
  kill -0 "$pid" 2>/dev/null || { cat "$work/run.log" >&2; echo "check_monitor: campaign died before binding" >&2; exit 1; }
  sleep 0.1
done
[[ -n "$addr" ]] || { echo "check_monitor: no listen address in run log" >&2; exit 1; }

fetch() { # fetch <path> — retry a few times to absorb server startup
  for _ in $(seq 1 20); do
    if out=$(curl -sf --max-time 5 "$addr$1"); then echo "$out"; return 0; fi
    sleep 0.2
  done
  echo "check_monitor: GET $1 failed" >&2
  return 1
}

# 3. Every endpoint answers while (or just after) the campaign runs.
[[ "$(fetch /healthz)" == "ok" ]] || { echo "check_monitor: bad /healthz" >&2; exit 1; }

status=$(fetch /status)
echo "$status" | jq -e '
  (.config.workers >= 1) and
  (.live.execs >= 0) and (.live.branches >= 0) and
  (.live | has("validity_pct") and has("logic_bugs") and has("cases_aborted")) and
  (.worker_execs | type == "array")
' >/dev/null || { echo "check_monitor: /status shape violated: $status" >&2; exit 1; }

metrics=$(fetch /metrics)
echo "$metrics" | grep -q '^lego_execs_total ' || {
  echo "check_monitor: /metrics lacks lego_execs_total" >&2; exit 1; }
echo "$metrics" | grep -q '^# TYPE lego_exec_latency_us histogram' || {
  echo "check_monitor: /metrics lacks the exec-latency histogram" >&2; exit 1; }

# SSE: the stream must frame events as `data: {...}` lines. The stream is
# endless, so cap it with timeout and only require at least one frame.
sse=$(timeout 3 curl -sN --max-time 3 "$addr/events" | head -20 || true)
echo "$sse" | grep -q '^data: {"type":' || {
  echo "check_monitor: /events produced no SSE frames: $sse" >&2; exit 1; }

wait "$pid" || { cat "$work/run.log" >&2; echo "check_monitor: monitored campaign failed" >&2; exit 1; }

# 4. Read-side parity: deterministic outcome and retained corpus are
#    byte-identical with and without the monitoring plane.
strip='del(.wall_ms, .execs_per_sec, .stage_profile)'
off=$(jq -S "$strip" "$work/off/campaign.json")
on=$(jq -S "$strip" "$work/on/campaign.json")
if [[ "$off" != "$on" ]]; then
  echo "check_monitor: the monitoring plane perturbed the campaign" >&2
  diff <(echo "$off") <(echo "$on") >&2 || true
  exit 1
fi
diff -r "$work/off/corpus" "$work/on/corpus" >/dev/null || {
  echo "check_monitor: retained corpus differs under monitoring" >&2; exit 1; }

# 5. Plot data: header + >=2 rows, time and coverage monotone, closing row
#    consistent with the campaign report.
awk -F, '
  NR == 1 { if ($0 != "t_s,execs,execs_per_sec,branches,corpus,queued,validity_pct,bugs,logic_bugs,aborted,rule_edges")
              { print "bad header: " $0; exit 1 } next }
  { if ($1 + 0 < t) { print "time not monotone at row " NR; exit 1 }
    if ($4 + 0 < b) { print "branches not monotone at row " NR; exit 1 }
    t = $1 + 0; b = $4 + 0; rows++ }
  END { if (rows < 2) { print "want >=2 data rows, got " rows; exit 1 } }
' "$work/plot_data.csv" || { echo "check_monitor: plot_data.csv invalid" >&2; exit 1; }
execs=$(jq -r '.execs' "$work/on/campaign.json")
tail -1 "$work/plot_data.csv" | awk -F, -v e="$execs" \
  '$2 + 0 != e { print "closing row execs " $2 " != campaign execs " e; exit 1 }' || {
  echo "check_monitor: plot_data.csv closing row disagrees with campaign.json" >&2; exit 1; }
jq -e '.columns[0] == "t_s" and (.rows | length >= 2)' \
  "${work}/plot_data.json" >/dev/null || {
  echo "check_monitor: plot_data.json invalid" >&2; exit 1; }

# 6. Trace: Chrome-trace schema, per-stage complete events, nonempty.
jq -e '
  (.traceEvents | type == "array" and length > 0) and
  ([.traceEvents[] | select(.ph == "X")] | length > 0 and
   (map(has("name") and has("ts") and has("dur") and has("pid") and has("tid")) | all)) and
  ([.traceEvents[] | select(.ph == "M" and .name == "thread_name")] | length > 0)
' "$work/trace.json" >/dev/null || { echo "check_monitor: trace.json invalid" >&2; exit 1; }

spans=$(jq '[.traceEvents[] | select(.ph == "X")] | length' "$work/trace.json")
rows=$(($(wc -l < "$work/plot_data.csv") - 1))
echo "check_monitor: OK ($execs cases parity-checked, $rows plot rows, $spans trace spans, served at $addr)"
